//! Experiment E9: hot-path message throughput, batched vs unbatched.
//!
//! Streams datagram casts (the connectionless §2.2 protocol — the only
//! traffic class the ND-Layer coalesces) over TCP transports and measures
//! delivered-message throughput at three payload sizes, on a direct LVC
//! and across a two-gateway chain. Each stream ends with a synchronous
//! request/reply fence on the same circuit, so FIFO wire order guarantees
//! every cast was delivered before the clock stops.
//!
//! This is a manual harness (`harness = false`, no criterion): it emits
//! the machine-readable baselines `BENCH_PR3.json` (batched vs unbatched),
//! `BENCH_PR5.json` (credit accounting on vs off with a wide-open flow
//! window), `BENCH_PR7.json` (flight recorder on vs off), and
//! `BENCH_PR8.json` (leased name-cache resolution vs cold NSP round
//! trips, plus a relocation storm), and `BENCH_PR10.json` (direct-LVC
//! substrate sweep: SHM ring vs TCP loopback vs UDP datagrams, with a
//! bare-ring memory-speed baseline) at the repository root, which CI's
//! bench-smoke job regenerates in `--quick` mode to catch batching,
//! flow-control, observability, naming, and substrate regressions.
//!
//! Run: `cargo bench --bench message_throughput [-- --quick]`

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ntcs::{
    ComMod, FlowSettings, Gateway, MachineId, MachineType, NetKind, NtcsError, Testbed, World,
};
use ntcs_bench::round_trip;
use ntcs_ipcs::{ShmRing, SHM_RING_CAP};
use ntcs_nucleus::Lvc;
use ntcs_repro::messages::{Answer, Ask, Bulk};

/// Frames per batch when batching is on (the `NucleusConfig` default).
const BATCH_FRAMES: usize = 8;
/// Flush deadline when batching is on.
const BATCH_DELAY: Duration = Duration::from_micros(500);
/// Credit window for the flow-control sweep: much deeper than the transport
/// pipeline (socket buffers + inbox), so a consumer draining at wire speed
/// never idles the sender and the sweep measures the *accounting* overhead —
/// debit, drain ledger, grant frames — not artificial starvation.
const FLOW_WINDOW_BYTES: u64 = 64 * 1024 * 1024;
const FLOW_WINDOW_FRAMES: u32 = 1 << 20;
/// Grant cadence for the sweep: kept small relative to the window so the
/// receiver's grant-emission path stays on the measured hot path.
const FLOW_LOW_WATERMARK: u64 = 64 * 1024;
/// Repetitions per flow-sweep case; the best run is kept. Scheduling noise
/// on a shared host dwarfs the effect being measured (single runs of the
/// same case vary 10x), and best-of-N isolates the code path's capability.
const FLOW_REPS: usize = 3;

#[derive(Clone, Copy, PartialEq)]
enum Topology {
    /// Two machines on one network: a single direct LVC.
    Lvc,
    /// Three networks in a line: every frame crosses two gateway splices.
    GatewayChain,
}

impl Topology {
    fn label(self) -> &'static str {
        match self {
            Topology::Lvc => "lvc",
            Topology::GatewayChain => "gateway_chain",
        }
    }
}

struct CaseResult {
    topology: &'static str,
    payload_bytes: usize,
    batched: bool,
    flow: bool,
    recorder: bool,
    messages: u64,
    delivered: u64,
    elapsed_us: u64,
    msgs_per_sec: f64,
    mbytes_per_sec: f64,
}

/// A sink module: counts `Bulk` casts, answers `Ask` fences.
struct Sink {
    commod: Arc<ComMod>,
    received: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Sink {
    fn spawn(testbed: &Testbed, machine: ntcs::MachineId) -> Sink {
        let commod = Arc::new(testbed.module(machine, "tput-sink").expect("bind sink"));
        let received = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let commod = Arc::clone(&commod);
            let received = Arc::clone(&received);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("tput-sink".into())
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        match commod.receive(Some(Duration::from_millis(50))) {
                            Ok(msg) => {
                                if msg.decode::<Bulk>().is_ok() {
                                    received.fetch_add(1, Ordering::Relaxed);
                                } else if let Ok(a) = msg.decode::<Ask>() {
                                    let _ = commod.reply(
                                        &msg,
                                        &Answer {
                                            n: a.n,
                                            body: String::new(),
                                        },
                                    );
                                }
                            }
                            Err(NtcsError::Timeout) => {}
                            Err(_) => return,
                        }
                    }
                })
                .expect("spawn sink")
        };
        Sink {
            commod,
            received,
            stop,
            thread: Some(thread),
        }
    }

    fn count(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }
}

impl Drop for Sink {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.commod.shutdown();
    }
}

struct Lab {
    testbed: Testbed,
    src: MachineId,
    dst: MachineId,
    _gateways: Vec<Gateway>,
}

/// Builds the deployment over TCP transports with image-compatible
/// endpoint machines (Sun ↔ Sun), so data conversion is a byte copy and
/// the measurement isolates the wire path the batching work targets —
/// not the packed-mode text conversion E3 already measures.
fn build_lab(topology: Topology) -> Lab {
    match topology {
        Topology::Lvc => {
            let mut tb = Testbed::builder();
            let net = tb.add_network(NetKind::Tcp, "lan");
            let src = tb
                .add_machine(MachineType::Sun, "host0", &[net])
                .expect("machine");
            let dst = tb
                .add_machine(MachineType::Sun, "host1", &[net])
                .expect("machine");
            tb.name_server_on(src);
            Lab {
                testbed: tb.start().expect("start"),
                src,
                dst,
                _gateways: Vec::new(),
            }
        }
        Topology::GatewayChain => {
            let mut tb = Testbed::builder();
            let nets: Vec<_> = (0..3)
                .map(|i| tb.add_network(NetKind::Tcp, &format!("net{i}")))
                .collect();
            let ns = tb
                .add_machine(MachineType::Sun, "ns-host", &nets)
                .expect("machine");
            let src = tb
                .add_machine(MachineType::Sun, "edge0", &[nets[0]])
                .expect("machine");
            let dst = tb
                .add_machine(MachineType::Sun, "edge2", &[nets[2]])
                .expect("machine");
            let g0 = tb
                .add_machine(MachineType::Apollo, "gw-host0", &[nets[0], nets[1]])
                .expect("machine");
            let g1 = tb
                .add_machine(MachineType::Apollo, "gw-host1", &[nets[1], nets[2]])
                .expect("machine");
            tb.name_server_on(ns);
            let testbed = tb.start().expect("start");
            let gateways = vec![
                testbed.gateway(g0, "gw-0-1").expect("gateway"),
                testbed.gateway(g1, "gw-1-2").expect("gateway"),
            ];
            Lab {
                testbed,
                src,
                dst,
                _gateways: gateways,
            }
        }
    }
}

fn run_case(
    topology: Topology,
    payload_bytes: usize,
    batched: bool,
    flow: Option<FlowSettings>,
    recorder: bool,
    messages: u64,
) -> CaseResult {
    // Build the deployment fresh per case so batching/flow/recorder config
    // and circuit state never leak between cases.
    let lab = build_lab(topology);
    let testbed = &lab.testbed;
    if batched {
        testbed.enable_batching(BATCH_FRAMES, BATCH_DELAY);
    }
    if let Some(settings) = flow {
        testbed.enable_flow_control(settings);
    }
    if !recorder {
        // The recorder is on by default; the PR-7 sweep measures its cost
        // by stripping it from every module bound below.
        testbed.set_config_hook(Some(Arc::new(|c| c.without_recorder())));
    }

    let sink = Sink::spawn(testbed, lab.dst);
    let client = testbed.module(lab.src, "tput-src").expect("bind src");
    let dst = client.locate("tput-sink").expect("locate sink");

    // Establish the circuit and warm both ends outside the timed window.
    round_trip(&client, dst, 0);

    let words = vec![0xABCD_1234u32; payload_bytes / 4];
    let start = Instant::now();
    for seq in 0..messages {
        client
            .cast(
                dst,
                &Bulk {
                    seq: seq as u32,
                    words: words.clone(),
                },
            )
            .expect("cast");
    }
    // Fence: a synchronous round trip on the same circuit. The sync send
    // drains any buffered frames first and the wire is FIFO, so the reply
    // proves every cast above has been delivered and counted.
    round_trip(&client, dst, 1);
    let elapsed = start.elapsed();

    let delivered = sink.count();
    let elapsed_us = elapsed.as_micros() as u64;
    let secs = elapsed.as_secs_f64();
    CaseResult {
        topology: topology.label(),
        payload_bytes,
        batched,
        flow: flow.is_some(),
        recorder,
        messages,
        delivered,
        elapsed_us,
        msgs_per_sec: delivered as f64 / secs,
        mbytes_per_sec: (delivered as f64 * payload_bytes as f64) / secs / (1024.0 * 1024.0),
    }
}

struct SubstrateCase {
    substrate: String,
    payload_bytes: usize,
    messages: u64,
    delivered: u64,
    elapsed_us: u64,
    msgs_per_sec: f64,
    mbytes_per_sec: f64,
}

/// Length of the phase-5 fence block — distinct from every payload size
/// and from the 8-byte count reply.
const FENCE_LEN: usize = 4;

/// One direct-LVC sweep case over a native substrate: raw blocks from a
/// source [`Lvc`] into a sink thread, fenced by a count-reply block. No
/// LCM, no naming, no batching — the measurement isolates the substrate
/// under the ND layer. SHM runs co-located on one machine (its only legal
/// deployment); TCP and UDP run across a two-machine loopback. UDP is
/// lossy under burst (kernel receive buffers), so its throughput is
/// computed on *delivered* messages; the connection-oriented substrates
/// must deliver everything.
fn run_substrate_case(kind: NetKind, payload_bytes: usize, messages: u64) -> SubstrateCase {
    let world = World::new();
    let net = world.add_network(kind, "bench-net");
    let (src_m, dst_m) = if kind == NetKind::Shm {
        let m = world
            .add_machine(MachineType::Sun, "colo", &[net])
            .expect("machine");
        (m, m)
    } else {
        (
            world
                .add_machine(MachineType::Sun, "src", &[net])
                .expect("machine"),
            world
                .add_machine(MachineType::Sun, "dst", &[net])
                .expect("machine"),
        )
    };
    let (addr, listener) = world
        .create_listener(dst_m, net, "bench-sink")
        .expect("listener");

    let sink = std::thread::Builder::new()
        .name("substrate-sink".into())
        .spawn(move || {
            let chan = listener
                .accept(Some(Duration::from_secs(10)))
                .expect("accept");
            let lvc = Lvc::new(Arc::from(chan), net);
            let mut count: u64 = 0;
            loop {
                match lvc.recv_raw(Some(Duration::from_secs(2))) {
                    Ok(block) if block.len() == payload_bytes => count += 1,
                    Ok(block) if block.len() == FENCE_LEN => {
                        // Report how many payload blocks made it; the
                        // client resends the fence until a reply lands.
                        let _ = lvc.send_raw(bytes::Bytes::from(count.to_be_bytes().to_vec()));
                    }
                    Ok(_) => {}
                    Err(_) => return,
                }
            }
        })
        .expect("spawn sink");

    let chan = world.connect(src_m, &addr).expect("connect");
    let lvc = Lvc::new(Arc::from(chan), net);
    let block = bytes::Bytes::from(vec![0xB5u8; payload_bytes]);
    let start = Instant::now();
    for _ in 0..messages {
        lvc.send_raw(block.clone()).expect("send block");
    }
    let delivered;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        lvc.send_raw(bytes::Bytes::from(vec![0xFEu8; FENCE_LEN]))
            .expect("send fence");
        match lvc.recv_raw(Some(Duration::from_millis(250))) {
            Ok(b) if b.len() == 8 => {
                delivered = u64::from_be_bytes(b.as_ref().try_into().expect("count block"));
                break;
            }
            _ if Instant::now() > deadline => panic!("fence never answered over {kind}"),
            _ => {}
        }
    }
    let elapsed = start.elapsed();
    lvc.close();
    let _ = sink.join();
    if kind != NetKind::Udp {
        assert_eq!(
            delivered, messages,
            "{kind} is connection-oriented and must deliver every block"
        );
    }
    let secs = elapsed.as_secs_f64();
    SubstrateCase {
        substrate: kind.to_string(),
        payload_bytes,
        messages,
        delivered,
        elapsed_us: elapsed.as_micros() as u64,
        msgs_per_sec: delivered as f64 / secs,
        mbytes_per_sec: (delivered as f64 * payload_bytes as f64) / secs / (1024.0 * 1024.0),
    }
}

/// The memory-speed ceiling: the bare [`ShmRing`] with no channel framing,
/// no fault conditions, no buffer pool — one producer and one consumer
/// thread moving `messages` refcounted 1 KiB blocks.
fn run_memory_baseline(messages: u64) -> SubstrateCase {
    let ring: Arc<ShmRing<bytes::Bytes>> = Arc::new(ShmRing::new(SHM_RING_CAP));
    let consumer = {
        let ring = Arc::clone(&ring);
        std::thread::Builder::new()
            .name("ring-consumer".into())
            .spawn(move || {
                let mut got = 0u64;
                while got < messages {
                    if ring.try_pop().is_some() {
                        got += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
            .expect("spawn consumer")
    };
    let block = bytes::Bytes::from(vec![0xB5u8; 1024]);
    let start = Instant::now();
    let mut sent = 0u64;
    while sent < messages {
        let mut b = block.clone();
        loop {
            match ring.try_push(b) {
                Ok(()) => break,
                Err(back) => {
                    b = back;
                    std::hint::spin_loop();
                }
            }
        }
        sent += 1;
    }
    consumer.join().expect("consumer");
    let elapsed = start.elapsed();
    let secs = elapsed.as_secs_f64();
    SubstrateCase {
        substrate: "memory".into(),
        payload_bytes: 1024,
        messages,
        delivered: messages,
        elapsed_us: elapsed.as_micros() as u64,
        msgs_per_sec: messages as f64 / secs,
        mbytes_per_sec: (messages as f64 * 1024.0) / secs / (1024.0 * 1024.0),
    }
}

/// A regression gate: panics on violation unless `NTCS_BENCH_NO_GATES` is
/// set, in which case the violation is reported and the run continues —
/// for noisy development hosts where quick-mode ratios jitter past the
/// budgets. CI leaves the gates enforced.
fn gate(ok: bool, msg: impl FnOnce() -> String) {
    if ok {
        return;
    }
    if std::env::var("NTCS_BENCH_NO_GATES").is_ok_and(|v| v != "0") {
        eprintln!("WARN (gate skipped): {}", msg());
    } else {
        panic!("{}", msg());
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick")
        || std::env::var("NTCS_BENCH_QUICK").is_ok_and(|v| v != "0");

    // (payload bytes, messages per case)
    let sizes: Vec<(usize, u64)> = if quick {
        vec![(1024, 2_000)]
    } else {
        vec![(64, 20_000), (1024, 20_000), (65_536, 1_500)]
    };
    let topologies: Vec<Topology> = if quick {
        vec![Topology::Lvc]
    } else {
        vec![Topology::Lvc, Topology::GatewayChain]
    };

    let mut results: Vec<CaseResult> = Vec::new();
    for &topology in &topologies {
        for &(payload, messages) in &sizes {
            for batched in [false, true] {
                let r = run_case(topology, payload, batched, None, true, messages);
                eprintln!(
                    "{:>13} {:>6} B {:>9}: {:>10.0} msgs/s  {:>8.2} MiB/s  ({} of {} delivered in {} ms)",
                    r.topology,
                    r.payload_bytes,
                    if r.batched { "batched" } else { "unbatched" },
                    r.msgs_per_sec,
                    r.mbytes_per_sec,
                    r.delivered,
                    r.messages,
                    r.elapsed_us / 1000,
                );
                assert_eq!(
                    r.delivered, r.messages,
                    "clean wire must deliver every cast"
                );
                results.push(r);
            }
        }
    }

    // Batched-over-unbatched speedup per (topology, size) pair.
    let mut speedups: Vec<(String, f64)> = Vec::new();
    for &topology in &topologies {
        for &(payload, _) in &sizes {
            let find = |batched: bool| {
                results
                    .iter()
                    .find(|r| {
                        r.topology == topology.label()
                            && r.payload_bytes == payload
                            && r.batched == batched
                    })
                    .expect("case ran")
                    .msgs_per_sec
            };
            let speedup = find(true) / find(false);
            eprintln!(
                "{:>13} {:>6} B: batched/unbatched = {speedup:.2}x",
                topology.label(),
                payload
            );
            speedups.push((format!("{}/{}", topology.label(), payload), speedup));
        }
    }

    // Hand-rolled JSON (no serde_json in the vendor set).
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"message_throughput\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"transport\": \"tcp\",");
    let _ = writeln!(json, "  \"batch_frames\": {BATCH_FRAMES},");
    let _ = writeln!(json, "  \"batch_delay_us\": {},", BATCH_DELAY.as_micros());
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"topology\": \"{}\", \"payload_bytes\": {}, \"batched\": {}, \
             \"messages\": {}, \"delivered\": {}, \"elapsed_us\": {}, \
             \"msgs_per_sec\": {:.1}, \"mbytes_per_sec\": {:.3}}}",
            r.topology,
            r.payload_bytes,
            r.batched,
            r.messages,
            r.delivered,
            r.elapsed_us,
            r.msgs_per_sec,
            r.mbytes_per_sec,
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"speedup_batched_over_unbatched\": {\n");
    for (i, (key, v)) in speedups.iter().enumerate() {
        let _ = write!(json, "    \"{key}\": {v:.3}");
        json.push_str(if i + 1 < speedups.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n}\n");

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_PR3.json");
    std::fs::write(&out, &json).expect("write BENCH_PR3.json");
    eprintln!("wrote {}", out.display());

    // The gate CI's bench-smoke job relies on: batching must win at 1 KiB.
    if let Some((key, v)) = speedups.iter().find(|(k, _)| k.ends_with("/1024")) {
        gate(*v > 1.0, || {
            format!("batched throughput must beat unbatched at 1 KiB ({key} = {v:.3}x)")
        });
    }

    // -- phase 2: credit-accounting overhead sweep (PR 5 baseline) --
    //
    // Same hot path, direct LVC, unbatched, with the flow-control window
    // wide open: the consumer drains at wire speed and keeps the window
    // replenished, so any slowdown is the per-frame debit/grant accounting
    // itself, not starvation.
    let flow_sizes: Vec<(usize, u64)> = if quick {
        vec![(1024, 10_000)]
    } else {
        vec![(1024, 20_000), (65_536, 1_500)]
    };
    let mut flow_results: Vec<CaseResult> = Vec::new();
    for &(payload, messages) in &flow_sizes {
        // Interleave the repetitions of both configurations so slow drift
        // in host load biases neither side.
        let mut best: [Option<CaseResult>; 2] = [None, None];
        for _ in 0..FLOW_REPS {
            for flow_on in [false, true] {
                let settings = flow_on.then(|| {
                    FlowSettings::enabled(FLOW_WINDOW_BYTES, FLOW_WINDOW_FRAMES)
                        .with_low_watermark(FLOW_LOW_WATERMARK)
                });
                let r = run_case(Topology::Lvc, payload, false, settings, true, messages);
                assert_eq!(
                    r.delivered, r.messages,
                    "credit accounting must not lose casts"
                );
                let slot = &mut best[usize::from(flow_on)];
                if slot
                    .as_ref()
                    .is_none_or(|b| r.msgs_per_sec > b.msgs_per_sec)
                {
                    *slot = Some(r);
                }
            }
        }
        for r in best.into_iter().map(|b| b.expect("at least one rep")) {
            eprintln!(
                "{:>13} {:>6} B {:>11}: {:>10.0} msgs/s  {:>8.2} MiB/s  ({} of {} delivered in {} ms)",
                r.topology,
                r.payload_bytes,
                if r.flow { "credits on" } else { "credits off" },
                r.msgs_per_sec,
                r.mbytes_per_sec,
                r.delivered,
                r.messages,
                r.elapsed_us / 1000,
            );
            flow_results.push(r);
        }
    }

    // Flow-on over flow-off throughput ratio per payload size.
    let mut ratios: Vec<(usize, f64)> = Vec::new();
    for &(payload, _) in &flow_sizes {
        let find = |flow: bool| {
            flow_results
                .iter()
                .find(|r| r.payload_bytes == payload && r.flow == flow)
                .expect("case ran")
                .msgs_per_sec
        };
        let ratio = find(true) / find(false);
        eprintln!(
            "{:>13} {payload:>6} B: credits-on/credits-off = {ratio:.3}x",
            "lvc"
        );
        ratios.push((payload, ratio));
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"bench\": \"message_throughput/flow_credit_sweep\","
    );
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"transport\": \"tcp\",");
    let _ = writeln!(json, "  \"flow_window_bytes\": {FLOW_WINDOW_BYTES},");
    let _ = writeln!(json, "  \"flow_window_frames\": {FLOW_WINDOW_FRAMES},");
    let _ = writeln!(
        json,
        "  \"flow_low_watermark_bytes\": {FLOW_LOW_WATERMARK},"
    );
    json.push_str("  \"results\": [\n");
    for (i, r) in flow_results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"topology\": \"{}\", \"payload_bytes\": {}, \"flow\": {}, \
             \"messages\": {}, \"delivered\": {}, \"elapsed_us\": {}, \
             \"msgs_per_sec\": {:.1}, \"mbytes_per_sec\": {:.3}}}",
            r.topology,
            r.payload_bytes,
            r.flow,
            r.messages,
            r.delivered,
            r.elapsed_us,
            r.msgs_per_sec,
            r.mbytes_per_sec,
        );
        json.push_str(if i + 1 < flow_results.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"throughput_ratio_flow_on_over_off\": {\n");
    for (i, (payload, v)) in ratios.iter().enumerate() {
        let _ = write!(json, "    \"lvc/{payload}\": {v:.3}");
        json.push_str(if i + 1 < ratios.len() { ",\n" } else { "\n" });
    }
    json.push_str("  }\n}\n");

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_PR5.json");
    std::fs::write(&out, &json).expect("write BENCH_PR5.json");
    eprintln!("wrote {}", out.display());

    // PR-5 gate: with a wide-open window, credit accounting must cost no
    // more than 5% of 1 KiB throughput.
    if let Some((_, v)) = ratios.iter().find(|(p, _)| *p == 1024) {
        gate(*v >= 0.95, || {
            format!(
                "credit accounting must stay within the 5% overhead budget at 1 KiB \
                 (credits-on/credits-off = {v:.3}x)"
            )
        });
    }

    // -- phase 3: flight-recorder overhead sweep (PR 7 baseline) --
    //
    // Same hot path, direct LVC, unbatched, no flow: the only variable is
    // the always-on flight recorder (ticket fetch-add + seqlocked slot
    // write, 1-in-4 sampling on SEND/DELIVER). Repetitions interleave the
    // two configurations so host-load drift biases neither side.
    let rec_sizes: Vec<(usize, u64)> = if quick {
        vec![(1024, 10_000)]
    } else {
        vec![(64, 20_000), (1024, 20_000), (65_536, 1_500)]
    };
    let mut rec_results: Vec<CaseResult> = Vec::new();
    for &(payload, messages) in &rec_sizes {
        let mut best: [Option<CaseResult>; 2] = [None, None];
        for _ in 0..FLOW_REPS {
            for recorder_on in [false, true] {
                let r = run_case(Topology::Lvc, payload, false, None, recorder_on, messages);
                assert_eq!(
                    r.delivered, r.messages,
                    "the flight recorder must not lose casts"
                );
                let slot = &mut best[usize::from(recorder_on)];
                if slot
                    .as_ref()
                    .is_none_or(|b| r.msgs_per_sec > b.msgs_per_sec)
                {
                    *slot = Some(r);
                }
            }
        }
        for r in best.into_iter().map(|b| b.expect("at least one rep")) {
            eprintln!(
                "{:>13} {:>6} B {:>12}: {:>10.0} msgs/s  {:>8.2} MiB/s  ({} of {} delivered in {} ms)",
                r.topology,
                r.payload_bytes,
                if r.recorder {
                    "recorder on"
                } else {
                    "recorder off"
                },
                r.msgs_per_sec,
                r.mbytes_per_sec,
                r.delivered,
                r.messages,
                r.elapsed_us / 1000,
            );
            rec_results.push(r);
        }
    }

    // Recorder-on over recorder-off throughput ratio per payload size.
    let mut rec_ratios: Vec<(usize, f64)> = Vec::new();
    for &(payload, _) in &rec_sizes {
        let find = |recorder: bool| {
            rec_results
                .iter()
                .find(|r| r.payload_bytes == payload && r.recorder == recorder)
                .expect("case ran")
                .msgs_per_sec
        };
        let ratio = find(true) / find(false);
        eprintln!(
            "{:>13} {payload:>6} B: recorder-on/recorder-off = {ratio:.3}x",
            "lvc"
        );
        rec_ratios.push((payload, ratio));
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"message_throughput/recorder_sweep\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"transport\": \"tcp\",");
    json.push_str("  \"results\": [\n");
    for (i, r) in rec_results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"topology\": \"{}\", \"payload_bytes\": {}, \"recorder\": {}, \
             \"messages\": {}, \"delivered\": {}, \"elapsed_us\": {}, \
             \"msgs_per_sec\": {:.1}, \"mbytes_per_sec\": {:.3}}}",
            r.topology,
            r.payload_bytes,
            r.recorder,
            r.messages,
            r.delivered,
            r.elapsed_us,
            r.msgs_per_sec,
            r.mbytes_per_sec,
        );
        json.push_str(if i + 1 < rec_results.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    json.push_str("  \"throughput_ratio_recorder_on_over_off\": {\n");
    for (i, (payload, v)) in rec_ratios.iter().enumerate() {
        let _ = write!(json, "    \"lvc/{payload}\": {v:.3}");
        json.push_str(if i + 1 < rec_ratios.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  }\n}\n");

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_PR7.json");
    std::fs::write(&out, &json).expect("write BENCH_PR7.json");
    eprintln!("wrote {}", out.display());

    // PR-7 gate: the always-on recorder must cost no more than 3% of
    // 1 KiB throughput.
    if let Some((_, v)) = rec_ratios.iter().find(|(p, _)| *p == 1024) {
        gate(*v >= 0.97, || {
            format!(
                "flight recorder must stay within the 3% overhead budget at 1 KiB \
                 (recorder-on/recorder-off = {v:.3}x)"
            )
        });
    }

    // -- phase 4: leased name-cache sweep (PR 8 baseline) --
    //
    // Resolution latency through `Nucleus::resolve` — the exact path every
    // send takes — with a warm lease vs with the lease invalidated before
    // every call (each uncached op is a full NSP round trip to the shard
    // over TCP), plus a relocation storm where every op is a relocation
    // followed by a send to the STALE address: the client must walk the
    // forwarding path, invalidate its lease, and still deliver.
    struct NamingCase {
        case: &'static str,
        ops: u64,
        elapsed_us: u64,
        ops_per_sec: f64,
        avg_latency_us: f64,
    }
    let naming_case = |case: &'static str, ops: u64, elapsed: Duration| {
        let secs = elapsed.as_secs_f64();
        NamingCase {
            case,
            ops,
            elapsed_us: elapsed.as_micros() as u64,
            ops_per_sec: ops as f64 / secs,
            avg_latency_us: elapsed.as_micros() as f64 / ops as f64,
        }
    };
    let (cached_ops, uncached_ops, storm_services, storm_rounds) = if quick {
        (5_000u64, 500u64, 4usize, 2usize)
    } else {
        (50_000, 3_000, 8, 5)
    };
    let mut naming_results: Vec<NamingCase> = Vec::new();
    {
        let lab = build_lab(Topology::Lvc);
        let target = lab
            .testbed
            .module(lab.src, "cache-target")
            .expect("bind target");
        // The client lives on the non-NS machine so every cold resolution
        // crosses the wire, like any remote module's would.
        let client = lab.testbed.module(lab.dst, "cache-cli").expect("bind cli");
        let dst = client.locate("cache-target").expect("locate target");
        let nucleus = client.nucleus();
        nucleus.resolve(dst).expect("cold resolve");

        let start = Instant::now();
        for _ in 0..cached_ops {
            nucleus.resolve(dst).expect("cached resolve");
        }
        naming_results.push(naming_case("lookup_cached", cached_ops, start.elapsed()));

        let start = Instant::now();
        for _ in 0..uncached_ops {
            // Drop both cache layers — the nucleus lease AND the NSP-side
            // name cache — so every resolution is a genuine wire round
            // trip to the shard.
            nucleus.statics().invalidate(dst);
            client.nsp().cache().invalidate(dst);
            nucleus.resolve(dst).expect("uncached resolve");
        }
        naming_results.push(naming_case(
            "lookup_uncached",
            uncached_ops,
            start.elapsed(),
        ));

        let m = client.metrics();
        assert!(
            m.ns_cache_hits + m.ns_cache_stale >= cached_ops,
            "cached loop must be served by the lease: {m:?}"
        );
        assert!(
            m.ns_cache_misses >= uncached_ops,
            "uncached loop must go cold every iteration: {m:?}"
        );
        target.shutdown();
    }
    {
        let lab = build_lab(Topology::Lvc);
        let mut services: Vec<ComMod> = (0..storm_services)
            .map(|i| {
                lab.testbed
                    .module(lab.src, &format!("storm-{i}"))
                    .expect("bind storm service")
            })
            .collect();
        let client = lab.testbed.module(lab.dst, "storm-cli").expect("bind cli");
        // Warm: one delivered message per service, so the client holds a
        // lease and an open circuit for every address about to go stale.
        // Plain sends with a confirming receive — a reliable send would
        // deadlock here, since its ack is only generated at app receive.
        for (i, s) in services.iter().enumerate() {
            client
                .send(
                    s.my_uadd(),
                    &Ask {
                        n: i as u32,
                        body: String::new(),
                    },
                )
                .expect("warm storm circuit");
            s.receive(Some(Duration::from_secs(5))).expect("drain warm");
        }
        let mut storm_ops = 0u64;
        let start = Instant::now();
        for round in 0..storm_rounds {
            let to = if round % 2 == 0 { lab.dst } else { lab.src };
            services = services
                .into_iter()
                .enumerate()
                .map(|(i, svc)| {
                    let tag = (round * 1_000 + i) as u32;
                    let old = svc.my_uadd();
                    let moved = svc.relocate_to(to).map_err(|e| e.error).expect("relocate");
                    // The first send to the stale address walks the
                    // forwarding path (address fault → shard lookup →
                    // lease invalidation); the triggering datagram itself
                    // is best-effort, so resend until the relocated
                    // incarnation confirms delivery.
                    let msg = Ask {
                        n: tag,
                        body: String::new(),
                    };
                    let _ = client.send(old, &msg);
                    let deadline = Instant::now() + Duration::from_secs(10);
                    let mut delivered = false;
                    while Instant::now() < deadline {
                        match moved.receive(Some(Duration::from_millis(50))) {
                            Ok(m) => {
                                if m.decode::<Ask>().is_ok_and(|a| a.n == tag) {
                                    delivered = true;
                                    break;
                                }
                            }
                            Err(_) => {
                                let _ = client.send(old, &msg);
                            }
                        }
                    }
                    assert!(
                        delivered,
                        "relocated service must receive post-relocation traffic"
                    );
                    storm_ops += 1;
                    moved
                })
                .collect();
        }
        naming_results.push(naming_case("relocation_storm", storm_ops, start.elapsed()));
        assert!(
            client.metrics().ns_invalidations >= storm_ops,
            "every stale-address recovery must invalidate a lease: {:?}",
            client.metrics()
        );
        for s in services {
            s.shutdown();
        }
    }

    for r in &naming_results {
        eprintln!(
            "{:>13} {:>16}: {:>10.0} ops/s  {:>9.2} us/op  ({} ops in {} ms)",
            "naming",
            r.case,
            r.ops_per_sec,
            r.avg_latency_us,
            r.ops,
            r.elapsed_us / 1000,
        );
    }
    let latency_of = |case: &str| {
        naming_results
            .iter()
            .find(|r| r.case == case)
            .expect("case ran")
            .avg_latency_us
    };
    let cache_speedup = latency_of("lookup_uncached") / latency_of("lookup_cached");
    eprintln!(
        "{:>13} cached/uncached lookup speedup = {cache_speedup:.1}x",
        "naming"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"bench\": \"message_throughput/name_cache_sweep\","
    );
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    let _ = writeln!(json, "  \"transport\": \"tcp\",");
    json.push_str("  \"results\": [\n");
    for (i, r) in naming_results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"case\": \"{}\", \"ops\": {}, \"elapsed_us\": {}, \
             \"ops_per_sec\": {:.1}, \"avg_latency_us\": {:.3}}}",
            r.case, r.ops, r.elapsed_us, r.ops_per_sec, r.avg_latency_us,
        );
        json.push_str(if i + 1 < naming_results.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"cached_over_uncached_lookup_speedup\": {cache_speedup:.3}"
    );
    json.push_str("}\n");

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_PR8.json");
    std::fs::write(&out, &json).expect("write BENCH_PR8.json");
    eprintln!("wrote {}", out.display());

    // PR-8 gate: a leased cache hit must beat a cold NSP round trip by at
    // least 5x — otherwise the cache is not paying for its staleness risk.
    gate(cache_speedup >= 5.0, || {
        format!(
            "cached lookups must be >= 5x faster than uncached NSP round trips \
             (got {cache_speedup:.3}x)"
        )
    });

    // -- phase 5: substrate sweep (PR 10 baseline) --
    //
    // Direct LVC raw blocks over each native substrate — no LCM, no
    // naming, no batching — so the numbers isolate the IPCS itself: the
    // co-location SHM ring vs TCP loopback vs UDP datagrams, with the
    // bare ShmRing push/pop pair as the memory-speed ceiling.
    let substrate_sizes: Vec<(usize, u64)> = if quick {
        vec![(1024, 10_000)]
    } else {
        vec![(64, 50_000), (1024, 50_000), (65_536, 2_000)]
    };
    let mut substrate_results: Vec<SubstrateCase> = Vec::new();
    for &(payload, messages) in &substrate_sizes {
        for kind in [NetKind::Shm, NetKind::Udp, NetKind::Tcp] {
            let r = run_substrate_case(kind, payload, messages);
            eprintln!(
                "{:>13} {:>6} B {:>9}: {:>10.0} msgs/s  {:>8.2} MiB/s  ({} of {} delivered in {} ms)",
                "substrate",
                r.payload_bytes,
                r.substrate,
                r.msgs_per_sec,
                r.mbytes_per_sec,
                r.delivered,
                r.messages,
                r.elapsed_us / 1000,
            );
            substrate_results.push(r);
        }
    }
    let mem = run_memory_baseline(if quick { 50_000 } else { 200_000 });
    eprintln!(
        "{:>13} {:>6} B {:>9}: {:>10.0} msgs/s  {:>8.2} MiB/s (bare ring ceiling)",
        "substrate", mem.payload_bytes, mem.substrate, mem.msgs_per_sec, mem.mbytes_per_sec,
    );

    let substrate_rate = |substrate: &str, payload: usize| {
        substrate_results
            .iter()
            .find(|r| r.substrate == substrate && r.payload_bytes == payload)
            .expect("case ran")
            .msgs_per_sec
    };
    let shm_over_tcp_1k = substrate_rate("shm", 1024) / substrate_rate("tcp", 1024);
    eprintln!(
        "{:>13} shm/tcp at 1 KiB = {shm_over_tcp_1k:.2}x",
        "substrate"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"message_throughput/substrate_sweep\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    );
    json.push_str("  \"results\": [\n");
    let all: Vec<&SubstrateCase> = substrate_results.iter().chain([&mem]).collect();
    for (i, r) in all.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"substrate\": \"{}\", \"payload_bytes\": {}, \"messages\": {}, \
             \"delivered\": {}, \"elapsed_us\": {}, \"msgs_per_sec\": {:.1}, \
             \"mbytes_per_sec\": {:.3}}}",
            r.substrate,
            r.payload_bytes,
            r.messages,
            r.delivered,
            r.elapsed_us,
            r.msgs_per_sec,
            r.mbytes_per_sec,
        );
        json.push_str(if i + 1 < all.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"shm_over_tcp_1k\": {shm_over_tcp_1k:.3}");
    json.push_str("}\n");

    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_PR10.json");
    std::fs::write(&out, &json).expect("write BENCH_PR10.json");
    eprintln!("wrote {}", out.display());

    // PR-10 gate: the co-location ring must beat TCP loopback by at least
    // 5x at 1 KiB — otherwise the SHM substrate is not paying for its
    // placement constraints.
    gate(shm_over_tcp_1k >= 5.0, || {
        format!(
            "SHM must be >= 5x faster than TCP loopback at 1 KiB \
             (got {shm_over_tcp_1k:.3}x)"
        )
    });
}
