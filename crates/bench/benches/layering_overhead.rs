//! Experiment E10 (§1.3): cost of the clean layering.
//!
//! "We were somewhat insensitive to any possible layering inefficiencies,
//! due to the loosely-coupled nature of the application." Rows: a raw IPCS
//! round trip (bytes over one mailbox/TCP channel) vs the full NTCS stack
//! (ALI → NSP → LCM → IP → ND, with headers, conversion, and bookkeeping),
//! on both substrates. Expected shape: the NTCS costs a small multiple of
//! the raw substrate — tolerable for large-grain modules, exactly the
//! paper's bet.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntcs::{MachineType, NetKind, World};
use ntcs_bench::{round_trip, EchoServer};
use ntcs_repro::scenarios::single_net;

fn raw_ipcs(c: &mut Criterion, kind: NetKind, label: &str) {
    let world = World::new();
    let net = world.add_network(kind, "raw");
    let a = world.add_machine(MachineType::Vax, "a", &[net]).unwrap();
    let b = world.add_machine(MachineType::Sun, "b", &[net]).unwrap();
    let (addr, listener) = world.create_listener(b, net, "raw-echo").unwrap();
    let w2 = world.clone();
    let server = std::thread::spawn(move || {
        let chan = listener.accept(Some(Duration::from_secs(5))).unwrap();
        while let Ok(block) = chan.recv(Some(Duration::from_secs(5))) {
            if chan.send(block).is_err() {
                break;
            }
        }
    });
    let chan: Arc<dyn ntcs_ipcs::IpcsChannel> = Arc::from(w2.connect(a, &addr).unwrap());
    let payload = Bytes::from(vec![7u8; 64]);
    c.benchmark_group("E10/layering")
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .bench_with_input(BenchmarkId::new("raw_ipcs", label), &payload, |bch, p| {
            bch.iter(|| {
                chan.send(p.clone()).unwrap();
                let got = chan.recv(Some(Duration::from_secs(5))).unwrap();
                assert_eq!(got.len(), p.len());
            });
        });
    chan.close();
    server.join().unwrap();
}

fn full_stack(c: &mut Criterion, kind: NetKind, label: &str) {
    let lab = single_net(2, kind).unwrap();
    let echo = EchoServer::spawn(&lab.testbed, lab.machines[1], "echo").unwrap();
    let client = lab.testbed.module(lab.machines[0], "client").unwrap();
    let dst = client.locate("echo").unwrap();
    round_trip(&client, dst, 0);
    c.benchmark_group("E10/layering")
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .bench_function(BenchmarkId::new("full_ntcs", label), |b| {
            let mut n = 0;
            b.iter(|| {
                n += 1;
                round_trip(&client, dst, n);
            });
        });
    echo.stop();
}

fn bench(c: &mut Criterion) {
    raw_ipcs(c, NetKind::Mbx, "mbx");
    full_stack(c, NetKind::Mbx, "mbx");
    raw_ipcs(c, NetKind::Tcp, "tcp");
    full_stack(c, NetKind::Tcp, "tcp");
}

criterion_group!(benches, bench);
criterion_main!(benches);
