//! Experiment E7 (§3.5): cost of transparent recovery after relocation.
//!
//! Rows: a send on a healthy circuit, vs the first send after the peer
//! relocated (address fault → forwarding query → re-establishment).
//! Expected shape: recovery costs a few circuit-establishment units — paid
//! once per reconfiguration, not per message.

use criterion::{criterion_group, criterion_main, Criterion};
use ntcs::NetKind;
use ntcs_drts::host::Handler;
use ntcs_drts::ServiceHost;
use ntcs_repro::messages::{Answer, Ask};
use ntcs_repro::scenarios::single_net;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7/recovery");
    group
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(3))
        .sample_size(10);

    let lab = single_net(3, NetKind::Mbx).unwrap();
    let handler: Handler = Box::new(|commod, msg| {
        if let Ok(a) = msg.decode::<Ask>() {
            let _ = commod.reply(
                &msg,
                &Answer {
                    n: a.n,
                    body: String::new(),
                },
            );
        }
    });
    let host = ServiceHost::spawn(&lab.testbed, lab.machines[1], "mover", handler).unwrap();
    let client = lab.testbed.module(lab.machines[0], "measurer").unwrap();
    let dst = client.locate("mover").unwrap();

    let exchange = |n: u32| {
        let reply = client
            .send_receive(
                dst,
                &Ask {
                    n,
                    body: String::new(),
                },
                ntcs_bench::T,
            )
            .expect("exchange");
        assert_eq!(reply.decode::<Answer>().unwrap().n, n);
    };
    exchange(0);

    group.bench_function("healthy_send", |b| {
        let mut n = 0;
        b.iter(|| {
            n += 1;
            exchange(n);
        });
    });

    // Recovery: relocate (outside the timed section conceptually dominates,
    // but the *client-visible* cost is the faulting exchange — we time that
    // exchange alone by relocating between iterations).
    group.bench_function("first_send_after_relocation", |b| {
        let mut flip = false;
        let mut n = 1000;
        b.iter_custom(|iters| {
            let mut total = std::time::Duration::ZERO;
            for _ in 0..iters {
                flip = !flip;
                let target = if flip {
                    lab.machines[2]
                } else {
                    lab.machines[1]
                };
                host.relocate(target).expect("relocate");
                n += 1;
                let started = std::time::Instant::now();
                exchange(n);
                total += started.elapsed();
            }
            total
        });
    });

    // Ablation: the reliable extension on a healthy circuit — what the
    // per-message ack costs when nothing goes wrong (§3.5's redundant
    // recovery, priced).
    group.bench_function("reliable_send_healthy", |b| {
        let mut n = 10_000;
        b.iter(|| {
            n += 1;
            client
                .send_reliable(
                    dst,
                    &Ask {
                        n,
                        body: String::new(),
                    },
                    std::time::Duration::from_secs(5),
                )
                .expect("reliable send");
        });
    });

    let m = client.metrics();
    println!(
        "[E7] client totals: {} address faults, {} forwarding queries, {} reconnects, \
         {} sends, {} retransmissions",
        m.address_faults, m.forward_queries, m.reconnects, m.sends, m.retransmissions
    );
    host.stop();
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
