//! Experiment E12 (§1.2): the URSA retrieval workload end to end.
//!
//! Rows: ranked query latency vs shard count (1..3 backends), and full user
//! interactions (search + fetch best). Expected shape: per-query latency
//! grows with shard count under a sequential fan-out (each shard adds one
//! round trip) while each shard's work shrinks — the trade the paper's
//! backend architecture navigates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntcs::{MachineType, NetKind, Testbed};
use ntcs_ursa::{Corpus, UrsaClient, UrsaDeployment, UrsaLayout};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E12/ursa");
    group
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
        .sample_size(15);

    let corpus = Corpus::generate(77, 400, 40);
    for shards in [1usize, 2, 3] {
        let mut tb = Testbed::builder();
        let net = tb.add_network(NetKind::Mbx, "campus");
        let m0 = tb.add_machine(MachineType::Sun, "ws", &[net]).unwrap();
        let backends: Vec<_> = (0..shards)
            .map(|i| {
                tb.add_machine(
                    [MachineType::Vax, MachineType::Apollo, MachineType::M68k][i % 3],
                    &format!("be{i}"),
                    &[net],
                )
                .unwrap()
            })
            .collect();
        tb.name_server_on(m0);
        let testbed = tb.start().unwrap();
        let deployment = UrsaDeployment::deploy(
            &testbed,
            &corpus,
            &UrsaLayout {
                index_machine: backends[0],
                search_machines: backends.clone(),
                doc_machine: backends[0],
            },
        )
        .unwrap();
        let client = UrsaClient::new(&testbed, m0, "bench-ws").unwrap();
        client.search("retrieval", 5).unwrap(); // warm circuits

        group.bench_with_input(BenchmarkId::new("search", shards), &shards, |b, _| {
            b.iter(|| {
                let hits = client.search("retrieval network system", 10).unwrap();
                assert!(!hits.is_empty());
            });
        });
        if shards == 2 {
            group.bench_function("search_and_fetch_best", |b| {
                b.iter(|| {
                    let (_hit, doc) = client.search_and_fetch_best("document index").unwrap();
                    assert!(!doc.title.is_empty());
                });
            });
            // E16: the historical boolean query model over the same shards.
            group.bench_function("boolean_search", |b| {
                b.iter(|| {
                    let docs = client
                        .search_boolean("retrieval AND (network OR system) AND NOT gateway")
                        .unwrap();
                    assert!(!docs.is_empty());
                });
            });
        }
        deployment.stop();
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
