//! Experiment E5 (§4.2): circuit establishment is rare, so its cost (and
//! the centralized topology query behind it) amortizes.
//!
//! Rows: cold first-send (name resolution + route + LVC open + handshake)
//! vs warm send on an established circuit; then the effective per-message
//! cost for conversations of various lengths. Expected shape: cold ≫ warm;
//! per-message cost approaches the warm floor within tens of messages.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ntcs::NetKind;
use ntcs_bench::{round_trip, EchoServer};
use ntcs_repro::scenarios::single_net;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5/amortization");
    group
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(15);

    // Cold: a fresh module each iteration — resolution + establishment +
    // one exchange. (Registration is excluded; it is a once-per-lifetime
    // cost.)
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let echo = EchoServer::spawn(&lab.testbed, lab.machines[1], "echo").unwrap();
    let mut fresh_counter = 0u32;
    group.bench_function("cold_first_send", |b| {
        b.iter(|| {
            fresh_counter += 1;
            let client = lab
                .testbed
                .commod(lab.machines[0], &format!("cold-{fresh_counter}"))
                .unwrap();
            client.register(&format!("cold-{fresh_counter}")).unwrap();
            let dst = client.locate("echo").unwrap();
            round_trip(&client, dst, fresh_counter);
            client.shutdown();
        });
    });

    // Warm: one established circuit, repeated exchanges.
    let client = lab.testbed.module(lab.machines[0], "warm").unwrap();
    let dst = client.locate("echo").unwrap();
    round_trip(&client, dst, 0);
    group.bench_function("warm_send", |b| {
        let mut n = 0;
        b.iter(|| {
            n += 1;
            round_trip(&client, dst, n);
        });
    });

    // Conversation lengths: total cost of open+k exchanges, per exchange.
    for k in [1u32, 10, 100] {
        group.bench_with_input(
            BenchmarkId::new("per_message_in_conversation", k),
            &k,
            |b, &k| {
                let mut conv = 0u32;
                b.iter(|| {
                    conv += 1;
                    let client = lab
                        .testbed
                        .commod(lab.machines[0], &format!("conv-{k}-{conv}"))
                        .unwrap();
                    client.register(&format!("conv-{k}-{conv}")).unwrap();
                    let dst = client.locate("echo").unwrap();
                    for i in 0..k {
                        round_trip(&client, dst, i);
                    }
                    client.shutdown();
                });
            },
        );
    }
    echo.stop();
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
