//! Shared helpers for the NTCS experiment benches.
//!
//! Each bench target regenerates one experiment from EXPERIMENTS.md. The
//! helpers here build the standard deployments and provide an echo service
//! so request/reply latencies can be measured end to end.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ntcs::{ComMod, MachineId, NtcsError, Result, Testbed, UAdd};
use ntcs_repro::messages::{Answer, Ask, Bulk};

/// Standard request/reply timeout for benches.
pub const T: Option<Duration> = Some(Duration::from_secs(10));

/// A background echo module that answers `Ask` with `Answer` and `Bulk`
/// with the same `Bulk`, until stopped.
pub struct EchoServer {
    commod: Option<Arc<ComMod>>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    uadd: UAdd,
}

impl EchoServer {
    /// Spawns the echo module registered as `name`.
    ///
    /// # Errors
    ///
    /// Binding/registration failures.
    pub fn spawn(testbed: &Testbed, machine: MachineId, name: &str) -> Result<EchoServer> {
        let commod = Arc::new(testbed.module(machine, name)?);
        let uadd = commod.my_uadd();
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let commod = Arc::clone(&commod);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("echo-{name}"))
                .spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        match commod.receive(Some(Duration::from_millis(50))) {
                            Ok(msg) => {
                                if let Ok(a) = msg.decode::<Ask>() {
                                    let _ = commod.reply(
                                        &msg,
                                        &Answer {
                                            n: a.n,
                                            body: a.body,
                                        },
                                    );
                                } else if let Ok(b) = msg.decode::<Bulk>() {
                                    let _ = commod.reply(&msg, &b);
                                }
                            }
                            Err(NtcsError::Timeout) => {}
                            Err(_) => return,
                        }
                    }
                })
                .expect("spawn echo server")
        };
        Ok(EchoServer {
            commod: Some(commod),
            stop,
            thread: Some(thread),
            uadd,
        })
    }

    /// The echo module's UAdd.
    #[must_use]
    pub fn uadd(&self) -> UAdd {
        self.uadd
    }

    /// Stops the module.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        if let Some(c) = self.commod.take() {
            c.shutdown();
        }
    }
}

impl Drop for EchoServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// One synchronous round trip through the full stack.
///
/// # Panics
///
/// Panics on any transport failure (benches should be loud).
pub fn round_trip(client: &ComMod, dst: UAdd, n: u32) {
    let reply = client
        .send_receive(
            dst,
            &Ask {
                n,
                body: String::new(),
            },
            T,
        )
        .expect("round trip");
    assert_eq!(
        reply.decode::<Answer>().expect("decode").n,
        n,
        "echo integrity"
    );
}
