//! The shared NTCS error type.
//!
//! §6.3 of the paper observes that a communication system becomes "inundated
//! with the handling of unlikely exceptional conditions", and that a layered
//! system struggles to decide whether a condition *is* an error. We keep a
//! single rich error enum so every layer can pass conditions upward
//! uninterpreted ("notification is simply passed upward", §2.2), with the
//! deciding layer matching on the variant.

use std::fmt;

/// Convenient result alias used across all NTCS crates.
pub type Result<T, E = NtcsError> = std::result::Result<T, E>;

/// Error type shared by every NTCS layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NtcsError {
    /// A previously resolved address is no longer reachable — the module
    /// moved or its channel failed (§3.5 "a simple address fault in the
    /// ND-Layer"). Carries the faulted UAdd's raw value.
    AddressFault(u64),
    /// The virtual circuit was closed by the peer or torn down underneath us.
    ConnectionClosed,
    /// Connection establishment failed at the IPCS level (after the
    /// retry-on-open the ND-Layer is allowed, §2.2).
    ConnectRefused(String),
    /// No gateway route exists between the source and destination networks.
    NoRoute {
        /// Source network raw id.
        from: u32,
        /// Destination network raw id.
        to: u32,
    },
    /// The naming service has no entry for the requested name.
    NameNotFound(String),
    /// The naming service has no entry for the requested UAdd.
    UnknownAddress(u64),
    /// No forwarding address is available: no replacement module was located
    /// (§3.5 first case).
    NoForwardingAddress(u64),
    /// The Name Server itself could not be reached.
    NameServerUnreachable,
    /// A blocking operation timed out.
    Timeout,
    /// A non-blocking operation would have blocked.
    WouldBlock,
    /// Malformed or unexpected protocol data.
    Protocol(String),
    /// A failure inside the underlying IPCS (the substrate below the
    /// ND-Layer).
    Ipcs(String),
    /// The recursion-depth guard fired (§6.3: stands in for the stack
    /// overflow observed in the unpatched system).
    RecursionLimit {
        /// Depth at which the guard fired.
        depth: u32,
    },
    /// The caller passed an invalid argument (ALI-layer parameter checking,
    /// §2.4).
    InvalidArgument(String),
    /// The module attempted an operation requiring registration before
    /// registering with the naming service.
    NotRegistered,
    /// The operation is not supported by this layer/driver.
    Unsupported(String),
    /// The module, machine, or testbed object has been shut down.
    ShutDown,
    /// A send deadline expired before delivery could be confirmed: the
    /// delivery supervisor exhausted its retry budget within the
    /// caller-supplied deadline (§3.5 recovery, bounded in time).
    DeadlineExceeded,
    /// The per-circuit breaker is open: consecutive failures tripped it and
    /// the half-open probe window has not yet produced a success. Carries
    /// the peer UAdd's raw value.
    CircuitBroken(u64),
    /// The circuit's credit window stayed exhausted past the flow-control
    /// policy's tolerance: the receiver is not draining. Deliberately
    /// *not* transient — retrying against a stalled window without new
    /// credit cannot succeed, and the condition must not trip circuit
    /// breakers (the peer is alive, just slow). Carries the peer UAdd's
    /// raw value.
    FlowStalled(u64),
}

impl fmt::Display for NtcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NtcsError::AddressFault(u) => write!(f, "address fault on uadd {u:#x}"),
            NtcsError::ConnectionClosed => f.write_str("virtual circuit closed"),
            NtcsError::ConnectRefused(why) => write!(f, "connection refused: {why}"),
            NtcsError::NoRoute { from, to } => {
                write!(f, "no gateway route from net{from} to net{to}")
            }
            NtcsError::NameNotFound(name) => write!(f, "name not found: {name}"),
            NtcsError::UnknownAddress(u) => write!(f, "unknown uadd {u:#x}"),
            NtcsError::NoForwardingAddress(u) => {
                write!(f, "no forwarding address for uadd {u:#x}")
            }
            NtcsError::NameServerUnreachable => f.write_str("name server unreachable"),
            NtcsError::Timeout => f.write_str("operation timed out"),
            NtcsError::WouldBlock => f.write_str("operation would block"),
            NtcsError::Protocol(why) => write!(f, "protocol error: {why}"),
            NtcsError::Ipcs(why) => write!(f, "ipcs error: {why}"),
            NtcsError::RecursionLimit { depth } => {
                write!(f, "recursion limit reached at depth {depth}")
            }
            NtcsError::InvalidArgument(why) => write!(f, "invalid argument: {why}"),
            NtcsError::NotRegistered => f.write_str("module is not registered"),
            NtcsError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            NtcsError::ShutDown => f.write_str("shut down"),
            NtcsError::DeadlineExceeded => f.write_str("send deadline exceeded"),
            NtcsError::CircuitBroken(u) => {
                write!(f, "circuit breaker open for uadd {u:#x}")
            }
            NtcsError::FlowStalled(u) => {
                write!(f, "credit window exhausted toward uadd {u:#x}")
            }
        }
    }
}

impl std::error::Error for NtcsError {}

impl NtcsError {
    /// Whether this condition indicates the peer may have *relocated* and a
    /// forwarding-address query is worth attempting (the LCM-Layer's address
    /// fault handler predicate, §3.5).
    #[must_use]
    pub fn is_relocation_candidate(&self) -> bool {
        matches!(
            self,
            NtcsError::AddressFault(_) | NtcsError::ConnectionClosed | NtcsError::ConnectRefused(_)
        )
    }

    /// Stable small integer used when an error must cross the wire inside an
    /// NTCS control message (shift mode header field).
    #[must_use]
    pub fn wire_code(&self) -> u32 {
        match self {
            NtcsError::AddressFault(_) => 1,
            NtcsError::ConnectionClosed => 2,
            NtcsError::ConnectRefused(_) => 3,
            NtcsError::NoRoute { .. } => 4,
            NtcsError::NameNotFound(_) => 5,
            NtcsError::UnknownAddress(_) => 6,
            NtcsError::NoForwardingAddress(_) => 7,
            NtcsError::NameServerUnreachable => 8,
            NtcsError::Timeout => 9,
            NtcsError::WouldBlock => 10,
            NtcsError::Protocol(_) => 11,
            NtcsError::Ipcs(_) => 12,
            NtcsError::RecursionLimit { .. } => 13,
            NtcsError::InvalidArgument(_) => 14,
            NtcsError::NotRegistered => 15,
            NtcsError::Unsupported(_) => 16,
            NtcsError::ShutDown => 17,
            NtcsError::DeadlineExceeded => 18,
            NtcsError::CircuitBroken(_) => 19,
            NtcsError::FlowStalled(_) => 20,
        }
    }

    /// Whether this condition is *transient*: retrying the same operation
    /// after a backoff may succeed without any re-resolution. The delivery
    /// supervisor retries these; everything else is surfaced immediately.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            NtcsError::Timeout
                | NtcsError::WouldBlock
                | NtcsError::ConnectionClosed
                | NtcsError::ConnectRefused(_)
                | NtcsError::AddressFault(_)
                | NtcsError::NameServerUnreachable
                | NtcsError::CircuitBroken(_)
                | NtcsError::Ipcs(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let samples: Vec<NtcsError> = vec![
            NtcsError::AddressFault(0x10),
            NtcsError::ConnectionClosed,
            NtcsError::ConnectRefused("no listener".into()),
            NtcsError::NoRoute { from: 1, to: 2 },
            NtcsError::NameNotFound("x".into()),
            NtcsError::UnknownAddress(9),
            NtcsError::NoForwardingAddress(9),
            NtcsError::NameServerUnreachable,
            NtcsError::Timeout,
            NtcsError::WouldBlock,
            NtcsError::Protocol("bad frame".into()),
            NtcsError::Ipcs("mailbox gone".into()),
            NtcsError::RecursionLimit { depth: 64 },
            NtcsError::InvalidArgument("empty".into()),
            NtcsError::NotRegistered,
            NtcsError::Unsupported("scatter-gather".into()),
            NtcsError::ShutDown,
            NtcsError::DeadlineExceeded,
            NtcsError::CircuitBroken(0x20),
            NtcsError::FlowStalled(0x30),
        ];
        for e in samples {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
            assert!(!s.ends_with('.'), "{s}");
        }
    }

    #[test]
    fn relocation_candidates() {
        assert!(NtcsError::AddressFault(1).is_relocation_candidate());
        assert!(NtcsError::ConnectionClosed.is_relocation_candidate());
        assert!(NtcsError::ConnectRefused("x".into()).is_relocation_candidate());
        assert!(!NtcsError::Timeout.is_relocation_candidate());
        assert!(!NtcsError::NameNotFound("x".into()).is_relocation_candidate());
    }

    #[test]
    fn transient_predicate() {
        assert!(NtcsError::Timeout.is_transient());
        assert!(NtcsError::ConnectionClosed.is_transient());
        assert!(NtcsError::CircuitBroken(1).is_transient());
        assert!(!NtcsError::DeadlineExceeded.is_transient());
        assert!(!NtcsError::NameNotFound("x".into()).is_transient());
        assert!(!NtcsError::InvalidArgument("x".into()).is_transient());
        assert!(
            !NtcsError::FlowStalled(1).is_transient(),
            "a stalled window will not clear without new credit"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + 'static>() {}
        assert_send_sync::<NtcsError>();
    }

    #[test]
    fn wire_codes_are_distinct() {
        let errors = [
            NtcsError::AddressFault(0),
            NtcsError::ConnectionClosed,
            NtcsError::ConnectRefused(String::new()),
            NtcsError::NoRoute { from: 0, to: 0 },
            NtcsError::NameNotFound(String::new()),
            NtcsError::UnknownAddress(0),
            NtcsError::NoForwardingAddress(0),
            NtcsError::NameServerUnreachable,
            NtcsError::Timeout,
            NtcsError::WouldBlock,
            NtcsError::Protocol(String::new()),
            NtcsError::Ipcs(String::new()),
            NtcsError::RecursionLimit { depth: 0 },
            NtcsError::InvalidArgument(String::new()),
            NtcsError::NotRegistered,
            NtcsError::Unsupported(String::new()),
            NtcsError::ShutDown,
            NtcsError::DeadlineExceeded,
            NtcsError::CircuitBroken(0),
            NtcsError::FlowStalled(0),
        ];
        let mut codes: Vec<u32> = errors.iter().map(NtcsError::wire_code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len());
    }
}
