//! Addressing, naming, and error types for the NTCS.
//!
//! The NTCS (Zeleznik, ICDCS 1986, §2.3) employs two levels of internal
//! addressing and one level of logical naming:
//!
//! * **Physical addresses** — network-dependent, uninterpreted by everything
//!   except the ND-Layer driver that created them ([`PhysAddr`]).
//! * **UAdds** — a flat, network- and location-independent unique address
//!   space, the foundation of the NTCS ([`UAdd`]). Temporary addresses
//!   (**TAdds**, §3.4) are UAdds with only local significance, used to
//!   bootstrap the recursive naming service.
//! * **Logical names** — application-level names ([`LogicalName`]), later
//!   extended to attribute-value naming ([`AttrSet`]).
//!
//! This crate also hosts [`NtcsError`], the error type shared by every layer,
//! and small identifier newtypes for the simulated world ([`MachineId`],
//! [`NetworkId`], [`MachineType`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::{Deserialize, Serialize};

pub mod attrs;
pub mod error;
pub mod phys;
pub mod uadd;

pub use attrs::{AttrQuery, AttrSet};
pub use error::{NtcsError, Result};
pub use phys::PhysAddr;
pub use uadd::{TAddGenerator, UAdd, UAddGenerator};

/// Identifier of a simulated machine in the testbed.
///
/// Machines are the unit of placement: every module runs *on* exactly one
/// machine at a time, and relocation (§3.5) moves it to another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MachineId(pub u32);

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Identifier of a (simulated) physical network.
///
/// Networks are *disjoint* (§4): the ND-Layer can only reach machines
/// attached to the same network; crossing networks requires an IVC chained
/// through one or more Gateways.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NetworkId(pub u32);

impl fmt::Display for NetworkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{}", self.0)
    }
}

/// Byte order of a machine's native data representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Endianness {
    /// Least-significant byte first (VAX, PDP-11 style for 16-bit words).
    Little,
    /// Most-significant byte first (Sun-2/3, Apollo — MC68000 family).
    Big,
}

/// The kind of machine a module runs on, as in the paper's Apollo/VAX/Sun
/// environment (§1).
///
/// The machine type determines the *native memory image* of a message
/// (byte ordering of its integers), which in turn determines whether the
/// NTCS may use image mode between two endpoints or must fall back to packed
/// mode (§5). The enum is open-ended in spirit; these four cover both byte
/// orders and give us "identical" and "incompatible" pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineType {
    /// DEC VAX — little-endian.
    Vax,
    /// Sun-3 workstation (MC68020) — big-endian.
    Sun,
    /// Apollo DN series (MC68000 family) — big-endian.
    Apollo,
    /// A generic MC68000 single-board machine — big-endian.
    M68k,
}

impl MachineType {
    /// All machine types known to the testbed.
    pub const ALL: [MachineType; 4] = [
        MachineType::Vax,
        MachineType::Sun,
        MachineType::Apollo,
        MachineType::M68k,
    ];

    /// The byte order of this machine's native integer representation.
    #[must_use]
    pub fn endianness(self) -> Endianness {
        match self {
            MachineType::Vax => Endianness::Little,
            MachineType::Sun | MachineType::Apollo | MachineType::M68k => Endianness::Big,
        }
    }

    /// Whether a raw byte-copied memory image produced on `self` is directly
    /// usable on `other` (§5: "messages between identical machines are simply
    /// byte-copied").
    ///
    /// The paper keys this on machine *type* identity; we relax it to
    /// representation compatibility (same byte order), which is what the
    /// image actually requires and what the ND-Layer can check locally.
    #[must_use]
    pub fn image_compatible(self, other: MachineType) -> bool {
        self.endianness() == other.endianness()
    }

    /// Stable small integer used in wire headers (shift mode, §5.2).
    #[must_use]
    pub fn wire_code(self) -> u32 {
        match self {
            MachineType::Vax => 1,
            MachineType::Sun => 2,
            MachineType::Apollo => 3,
            MachineType::M68k => 4,
        }
    }

    /// Inverse of [`MachineType::wire_code`].
    ///
    /// # Errors
    ///
    /// Returns [`NtcsError::Protocol`] for an unknown code.
    pub fn from_wire_code(code: u32) -> Result<Self> {
        match code {
            1 => Ok(MachineType::Vax),
            2 => Ok(MachineType::Sun),
            3 => Ok(MachineType::Apollo),
            4 => Ok(MachineType::M68k),
            other => Err(NtcsError::Protocol(format!(
                "unknown machine type code {other}"
            ))),
        }
    }
}

impl fmt::Display for MachineType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MachineType::Vax => "VAX",
            MachineType::Sun => "Sun",
            MachineType::Apollo => "Apollo",
            MachineType::M68k => "M68k",
        };
        f.write_str(s)
    }
}

/// An application-level logical name (§2.3 top level).
///
/// Currently a character string, exactly as in the paper; the naming service
/// extension replaces this with attribute-value naming ([`AttrSet`]) without
/// touching the rest of the system.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LogicalName(String);

impl LogicalName {
    /// Creates a logical name.
    ///
    /// # Errors
    ///
    /// Returns [`NtcsError::InvalidArgument`] if the name is empty or longer
    /// than [`LogicalName::MAX_LEN`] bytes (the registration message carries
    /// it in a bounded field).
    pub fn new(name: impl Into<String>) -> Result<Self> {
        let name = name.into();
        if name.is_empty() {
            return Err(NtcsError::InvalidArgument("logical name is empty".into()));
        }
        if name.len() > Self::MAX_LEN {
            return Err(NtcsError::InvalidArgument(format!(
                "logical name longer than {} bytes",
                Self::MAX_LEN
            )));
        }
        Ok(LogicalName(name))
    }

    /// Maximum length of a logical name in bytes.
    pub const MAX_LEN: usize = 255;

    /// The name as a string slice.
    #[must_use]
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for LogicalName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::str::FromStr for LogicalName {
    type Err = NtcsError;

    fn from_str(s: &str) -> Result<Self> {
        LogicalName::new(s)
    }
}

impl AsRef<str> for LogicalName {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

/// Monotonic registration generation of a module under a given name.
///
/// When a module is relocated it re-registers under the same name with a
/// higher generation; forwarding resolution (§3.5) looks for "a similar name
/// in a newer module", i.e. the highest live generation.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Generation(pub u32);

impl Generation {
    /// The next generation.
    #[must_use]
    pub fn next(self) -> Generation {
        Generation(self.0 + 1)
    }
}

impl fmt::Display for Generation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_type_endianness() {
        assert_eq!(MachineType::Vax.endianness(), Endianness::Little);
        assert_eq!(MachineType::Sun.endianness(), Endianness::Big);
        assert_eq!(MachineType::Apollo.endianness(), Endianness::Big);
        assert_eq!(MachineType::M68k.endianness(), Endianness::Big);
    }

    #[test]
    fn image_compatibility_is_endianness_equality() {
        assert!(MachineType::Sun.image_compatible(MachineType::Apollo));
        assert!(MachineType::Sun.image_compatible(MachineType::M68k));
        assert!(MachineType::Vax.image_compatible(MachineType::Vax));
        assert!(!MachineType::Vax.image_compatible(MachineType::Sun));
        assert!(!MachineType::Apollo.image_compatible(MachineType::Vax));
    }

    #[test]
    fn machine_type_wire_code_round_trips() {
        for mt in MachineType::ALL {
            assert_eq!(MachineType::from_wire_code(mt.wire_code()).unwrap(), mt);
        }
        assert!(MachineType::from_wire_code(0).is_err());
        assert!(MachineType::from_wire_code(99).is_err());
    }

    #[test]
    fn logical_name_validation() {
        assert!(LogicalName::new("index-server").is_ok());
        assert!(LogicalName::new("").is_err());
        assert!(LogicalName::new("x".repeat(256)).is_err());
        assert!(LogicalName::new("x".repeat(255)).is_ok());
    }

    #[test]
    fn logical_name_display_and_parse() {
        let n: LogicalName = "search.backend".parse().unwrap();
        assert_eq!(n.to_string(), "search.backend");
        assert_eq!(n.as_str(), "search.backend");
    }

    #[test]
    fn generation_ordering() {
        let g = Generation::default();
        assert!(g.next() > g);
        assert_eq!(g.next(), Generation(1));
    }

    #[test]
    fn ids_display() {
        assert_eq!(MachineId(3).to_string(), "m3");
        assert_eq!(NetworkId(7).to_string(), "net7");
    }
}
