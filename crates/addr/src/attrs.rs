//! Attribute-value naming (the paper's §7 extension).
//!
//! §7: "Both the naming scheme and the naming service implementation are
//! currently being replaced … The former will be attribute-value based."
//! §2.3 also notes naming schemes are application dependent and the design
//! lets them be "readily changed".
//!
//! An [`AttrSet`] is the set of attributes a module registers; an
//! [`AttrQuery`] is a conjunction of constraints evaluated against it. Both
//! have a stable character-format wire encoding (`key=value&key=value`) in
//! the spirit of the packed transport format (§5.1).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{NtcsError, Result};

/// Reserved attribute key that carries the module's plain logical name, so
/// string naming remains a special case of attribute naming.
pub const NAME_ATTR: &str = "name";

fn validate_token(what: &str, s: &str) -> Result<()> {
    if s.is_empty() {
        return Err(NtcsError::InvalidArgument(format!("empty {what}")));
    }
    if s.contains(['=', '&', '*']) {
        return Err(NtcsError::InvalidArgument(format!(
            "{what} {s:?} contains a reserved character (=, & or *)"
        )));
    }
    Ok(())
}

/// A set of named attributes describing a module.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrSet {
    attrs: BTreeMap<String, String>,
}

impl AttrSet {
    /// Creates an empty attribute set.
    #[must_use]
    pub fn new() -> Self {
        AttrSet::default()
    }

    /// Creates an attribute set holding only the reserved name attribute.
    ///
    /// # Errors
    ///
    /// Returns [`NtcsError::InvalidArgument`] if `name` contains reserved
    /// characters or is empty.
    pub fn named(name: &str) -> Result<Self> {
        let mut s = AttrSet::new();
        s.set(NAME_ATTR, name)?;
        Ok(s)
    }

    /// Sets (or replaces) an attribute.
    ///
    /// # Errors
    ///
    /// Returns [`NtcsError::InvalidArgument`] if the key or value is empty or
    /// contains the reserved characters `=`, `&`, `*`.
    pub fn set(&mut self, key: &str, value: &str) -> Result<&mut Self> {
        validate_token("attribute key", key)?;
        validate_token("attribute value", value)?;
        self.attrs.insert(key.to_owned(), value.to_owned());
        Ok(self)
    }

    /// Looks up an attribute value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.attrs.get(key).map(String::as_str)
    }

    /// The module's plain logical name, if present.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.get(NAME_ATTR)
    }

    /// Number of attributes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.attrs.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Encodes to the character wire format `k=v&k=v` (keys sorted).
    #[must_use]
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                out.push('&');
            }
            out.push_str(k);
            out.push('=');
            out.push_str(v);
        }
        out
    }

    /// Decodes the character wire format.
    ///
    /// # Errors
    ///
    /// Returns [`NtcsError::Protocol`] for malformed input.
    pub fn from_wire(s: &str) -> Result<Self> {
        let mut set = AttrSet::new();
        if s.is_empty() {
            return Ok(set);
        }
        for pair in s.split('&') {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| NtcsError::Protocol(format!("malformed attribute pair {pair:?}")))?;
            set.set(k, v)
                .map_err(|e| NtcsError::Protocol(e.to_string()))?;
        }
        Ok(set)
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.to_wire())
    }
}

impl FromIterator<(String, String)> for AttrSet {
    fn from_iter<I: IntoIterator<Item = (String, String)>>(iter: I) -> Self {
        let mut s = AttrSet::new();
        for (k, v) in iter {
            // Invalid pairs are skipped rather than panicking; FromIterator
            // cannot fail. Callers wanting validation use `set`.
            let _ = s.set(&k, &v);
        }
        s
    }
}

/// One constraint inside an [`AttrQuery`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrConstraint {
    /// The attribute must exist and equal the value exactly.
    Equals(String, String),
    /// The attribute must merely exist (wire form `key=*`).
    Exists(String),
}

/// A conjunctive query over attribute sets.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrQuery {
    constraints: Vec<AttrConstraint>,
}

impl AttrQuery {
    /// Creates an empty query, which matches every attribute set.
    #[must_use]
    pub fn any() -> Self {
        AttrQuery::default()
    }

    /// Creates a query matching modules registered under the plain name.
    ///
    /// # Errors
    ///
    /// Returns [`NtcsError::InvalidArgument`] for an invalid name token.
    pub fn by_name(name: &str) -> Result<Self> {
        AttrQuery::any().and_equals(NAME_ATTR, name)
    }

    /// Adds an equality constraint.
    ///
    /// # Errors
    ///
    /// Returns [`NtcsError::InvalidArgument`] for invalid tokens.
    pub fn and_equals(mut self, key: &str, value: &str) -> Result<Self> {
        validate_token("query key", key)?;
        validate_token("query value", value)?;
        self.constraints
            .push(AttrConstraint::Equals(key.to_owned(), value.to_owned()));
        Ok(self)
    }

    /// Adds an existence constraint.
    ///
    /// # Errors
    ///
    /// Returns [`NtcsError::InvalidArgument`] for an invalid key token.
    pub fn and_exists(mut self, key: &str) -> Result<Self> {
        validate_token("query key", key)?;
        self.constraints
            .push(AttrConstraint::Exists(key.to_owned()));
        Ok(self)
    }

    /// The value an equality constraint pins `key` to, if any (shard
    /// routing uses this to find the authoritative group for a
    /// `name=`-constrained query without evaluating it).
    #[must_use]
    pub fn equals_value(&self, key: &str) -> Option<&str> {
        self.constraints.iter().find_map(|c| match c {
            AttrConstraint::Equals(k, v) if k == key => Some(v.as_str()),
            AttrConstraint::Exists(_) | AttrConstraint::Equals(..) => None,
        })
    }

    /// Number of constraints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the query is unconstrained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Evaluates the query against an attribute set.
    #[must_use]
    pub fn matches(&self, attrs: &AttrSet) -> bool {
        self.constraints.iter().all(|c| match c {
            AttrConstraint::Equals(k, v) => attrs.get(k) == Some(v.as_str()),
            AttrConstraint::Exists(k) => attrs.get(k).is_some(),
        })
    }

    /// Encodes to the character wire format (`k=v&k2=*`).
    #[must_use]
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        for (i, c) in self.constraints.iter().enumerate() {
            if i > 0 {
                out.push('&');
            }
            match c {
                AttrConstraint::Equals(k, v) => {
                    out.push_str(k);
                    out.push('=');
                    out.push_str(v);
                }
                AttrConstraint::Exists(k) => {
                    out.push_str(k);
                    out.push_str("=*");
                }
            }
        }
        out
    }

    /// Decodes the character wire format.
    ///
    /// # Errors
    ///
    /// Returns [`NtcsError::Protocol`] for malformed input.
    pub fn from_wire(s: &str) -> Result<Self> {
        let mut q = AttrQuery::any();
        if s.is_empty() {
            return Ok(q);
        }
        for pair in s.split('&') {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| NtcsError::Protocol(format!("malformed query pair {pair:?}")))?;
            q = if v == "*" {
                q.and_exists(k)
            } else {
                q.and_equals(k, v)
            }
            .map_err(|e| NtcsError::Protocol(e.to_string()))?;
        }
        Ok(q)
    }
}

impl fmt::Display for AttrQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.to_wire())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AttrSet {
        let mut a = AttrSet::named("search-backend").unwrap();
        a.set("role", "search").unwrap();
        a.set("version", "2").unwrap();
        a
    }

    #[test]
    fn named_set_has_name() {
        assert_eq!(sample().name(), Some("search-backend"));
        assert_eq!(sample().len(), 3);
    }

    #[test]
    fn reserved_characters_rejected() {
        let mut a = AttrSet::new();
        assert!(a.set("k=", "v").is_err());
        assert!(a.set("k", "v&w").is_err());
        assert!(a.set("", "v").is_err());
        assert!(a.set("k", "").is_err());
        assert!(a.set("k", "v*").is_err());
    }

    #[test]
    fn attr_wire_round_trip() {
        let a = sample();
        let w = a.to_wire();
        assert_eq!(AttrSet::from_wire(&w).unwrap(), a);
        assert_eq!(AttrSet::from_wire("").unwrap(), AttrSet::new());
        assert!(AttrSet::from_wire("no-equals-here").is_err());
    }

    #[test]
    fn query_matching() {
        let a = sample();
        assert!(AttrQuery::any().matches(&a));
        assert!(AttrQuery::by_name("search-backend").unwrap().matches(&a));
        assert!(!AttrQuery::by_name("other").unwrap().matches(&a));
        let q = AttrQuery::any()
            .and_equals("role", "search")
            .unwrap()
            .and_exists("version")
            .unwrap();
        assert!(q.matches(&a));
        let q2 = q.and_equals("version", "3").unwrap();
        assert!(!q2.matches(&a));
        let q3 = AttrQuery::any().and_exists("absent").unwrap();
        assert!(!q3.matches(&a));
    }

    #[test]
    fn query_wire_round_trip() {
        let q = AttrQuery::by_name("x")
            .unwrap()
            .and_exists("role")
            .unwrap()
            .and_equals("version", "2")
            .unwrap();
        let w = q.to_wire();
        assert_eq!(AttrQuery::from_wire(&w).unwrap(), q);
        assert!(AttrQuery::from_wire("?broken").is_err());
        assert!(AttrQuery::from_wire("").unwrap().is_empty());
    }

    #[test]
    fn from_iterator_skips_invalid() {
        let s: AttrSet = vec![
            ("a".to_string(), "1".to_string()),
            ("bad=".to_string(), "2".to_string()),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get("a"), Some("1"));
    }

    #[test]
    fn display_forms() {
        let a = AttrSet::named("x").unwrap();
        assert_eq!(a.to_string(), "{name=x}");
        let q = AttrQuery::by_name("x").unwrap();
        assert_eq!(q.to_string(), "?name=x");
    }
}
