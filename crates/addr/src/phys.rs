//! Network-dependent physical addresses.
//!
//! §2.3: "At the lowest level are network-dependent physical addresses, such
//! as TCP/IP 32-bit integers or Apollo MBX pathnames, over which we have no
//! control." §3.2: the naming service maintains this information
//! **uninterpreted** — only the ND-Layer driver that created a physical
//! address ever looks inside it. We honour that by shipping physical
//! addresses through the naming service as opaque byte strings
//! ([`PhysAddr::to_opaque`] / [`PhysAddr::from_opaque`]).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{NtcsError, Result};
use crate::NetworkId;

/// A network-dependent physical address.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhysAddr {
    /// An Apollo-MBX-style mailbox pathname on a mailbox network.
    Mbx {
        /// The network this mailbox lives on.
        network: NetworkId,
        /// The mailbox pathname, e.g. `/sys/mbx/name_server`.
        path: String,
    },
    /// A TCP endpoint on a TCP network.
    Tcp {
        /// The logical network this endpoint belongs to (disjointness of
        /// simulated networks is enforced at the handshake even though all
        /// sockets share a loopback interface).
        network: NetworkId,
        /// Host, as a dotted string (always `127.0.0.1` in the testbed).
        host: String,
        /// TCP port.
        port: u16,
    },
    /// A shared-memory ring endpoint on a shared-memory network. Only
    /// reachable from the machine that owns it — the co-location fast path.
    Shm {
        /// The network this ring lives on.
        network: NetworkId,
        /// The ring pathname, e.g. `/sys/shm/name_server`.
        path: String,
    },
    /// A UDP datagram endpoint on a UDP network (connectionless,
    /// best-effort — the unreliable-cast substrate).
    Udp {
        /// The logical network this endpoint belongs to.
        network: NetworkId,
        /// Host, as a dotted string (always `127.0.0.1` in the testbed).
        host: String,
        /// UDP port.
        port: u16,
    },
}

impl PhysAddr {
    /// The network this address is reachable on.
    #[must_use]
    pub fn network(&self) -> NetworkId {
        match self {
            PhysAddr::Mbx { network, .. }
            | PhysAddr::Tcp { network, .. }
            | PhysAddr::Shm { network, .. }
            | PhysAddr::Udp { network, .. } => *network,
        }
    }

    /// Encodes this address into the opaque byte string stored
    /// (uninterpreted) by the naming service.
    ///
    /// The encoding is a stable, text-based form — in the spirit of the
    /// paper's character transport format (§5.1).
    #[must_use]
    pub fn to_opaque(&self) -> Vec<u8> {
        match self {
            PhysAddr::Mbx { network, path } => format!("mbx:{}:{}", network.0, path).into_bytes(),
            PhysAddr::Tcp {
                network,
                host,
                port,
            } => format!("tcp:{}:{}:{}", network.0, host, port).into_bytes(),
            PhysAddr::Shm { network, path } => format!("shm:{}:{}", network.0, path).into_bytes(),
            PhysAddr::Udp {
                network,
                host,
                port,
            } => format!("udp:{}:{}:{}", network.0, host, port).into_bytes(),
        }
    }

    /// Decodes an opaque byte string produced by [`PhysAddr::to_opaque`].
    ///
    /// # Errors
    ///
    /// Returns [`NtcsError::Protocol`] for malformed input.
    pub fn from_opaque(bytes: &[u8]) -> Result<PhysAddr> {
        let s = std::str::from_utf8(bytes)
            .map_err(|_| NtcsError::Protocol("physical address is not utf-8".into()))?;
        let mut parts = s.splitn(2, ':');
        let scheme = parts.next().unwrap_or_default();
        let rest = parts
            .next()
            .ok_or_else(|| NtcsError::Protocol(format!("malformed physical address {s:?}")))?;
        match scheme {
            "mbx" => {
                let (net, path) = rest
                    .split_once(':')
                    .ok_or_else(|| NtcsError::Protocol(format!("malformed mbx address {s:?}")))?;
                let network = NetworkId(
                    net.parse()
                        .map_err(|_| NtcsError::Protocol(format!("bad network id in {s:?}")))?,
                );
                if path.is_empty() {
                    return Err(NtcsError::Protocol("empty mailbox path".into()));
                }
                Ok(PhysAddr::Mbx {
                    network,
                    path: path.to_owned(),
                })
            }
            "shm" => {
                let (net, path) = rest
                    .split_once(':')
                    .ok_or_else(|| NtcsError::Protocol(format!("malformed shm address {s:?}")))?;
                let network = NetworkId(
                    net.parse()
                        .map_err(|_| NtcsError::Protocol(format!("bad network id in {s:?}")))?,
                );
                if path.is_empty() {
                    return Err(NtcsError::Protocol("empty shm ring path".into()));
                }
                Ok(PhysAddr::Shm {
                    network,
                    path: path.to_owned(),
                })
            }
            "tcp" | "udp" => {
                let mut f = rest.splitn(3, ':');
                let net = f.next().ok_or_else(|| {
                    NtcsError::Protocol(format!("malformed {scheme} address {s:?}"))
                })?;
                let host = f.next().ok_or_else(|| {
                    NtcsError::Protocol(format!("malformed {scheme} address {s:?}"))
                })?;
                let port = f.next().ok_or_else(|| {
                    NtcsError::Protocol(format!("malformed {scheme} address {s:?}"))
                })?;
                let network = NetworkId(
                    net.parse()
                        .map_err(|_| NtcsError::Protocol(format!("bad network id in {s:?}")))?,
                );
                let host = host.to_owned();
                let port = port
                    .parse()
                    .map_err(|_| NtcsError::Protocol(format!("bad port in {s:?}")))?;
                if scheme == "tcp" {
                    Ok(PhysAddr::Tcp {
                        network,
                        host,
                        port,
                    })
                } else {
                    Ok(PhysAddr::Udp {
                        network,
                        host,
                        port,
                    })
                }
            }
            other => Err(NtcsError::Protocol(format!(
                "unknown physical address scheme {other:?}"
            ))),
        }
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysAddr::Mbx { network, path } => write!(f, "mbx://{network}{path}"),
            PhysAddr::Tcp {
                network,
                host,
                port,
            } => write!(f, "tcp://{network}/{host}:{port}"),
            PhysAddr::Shm { network, path } => write!(f, "shm://{network}{path}"),
            PhysAddr::Udp {
                network,
                host,
                port,
            } => write!(f, "udp://{network}/{host}:{port}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbx_opaque_round_trip() {
        let a = PhysAddr::Mbx {
            network: NetworkId(3),
            path: "/sys/mbx/index_server".into(),
        };
        assert_eq!(PhysAddr::from_opaque(&a.to_opaque()).unwrap(), a);
    }

    #[test]
    fn tcp_opaque_round_trip() {
        let a = PhysAddr::Tcp {
            network: NetworkId(0),
            host: "127.0.0.1".into(),
            port: 45999,
        };
        assert_eq!(PhysAddr::from_opaque(&a.to_opaque()).unwrap(), a);
    }

    #[test]
    fn mbx_path_may_contain_colons() {
        let a = PhysAddr::Mbx {
            network: NetworkId(1),
            path: "/odd:path:with:colons".into(),
        };
        assert_eq!(PhysAddr::from_opaque(&a.to_opaque()).unwrap(), a);
    }

    #[test]
    fn shm_opaque_round_trip() {
        let a = PhysAddr::Shm {
            network: NetworkId(7),
            path: "/sys/shm/ring-0".into(),
        };
        assert_eq!(PhysAddr::from_opaque(&a.to_opaque()).unwrap(), a);
    }

    #[test]
    fn udp_opaque_round_trip() {
        let a = PhysAddr::Udp {
            network: NetworkId(2),
            host: "127.0.0.1".into(),
            port: 40123,
        };
        assert_eq!(PhysAddr::from_opaque(&a.to_opaque()).unwrap(), a);
    }

    #[test]
    fn malformed_opaque_is_rejected() {
        assert!(PhysAddr::from_opaque(b"").is_err());
        assert!(PhysAddr::from_opaque(b"bogus").is_err());
        assert!(PhysAddr::from_opaque(b"xyz:1:2").is_err());
        assert!(PhysAddr::from_opaque(b"tcp:1:127.0.0.1").is_err());
        assert!(PhysAddr::from_opaque(b"tcp:x:127.0.0.1:80").is_err());
        assert!(PhysAddr::from_opaque(b"tcp:1:127.0.0.1:notaport").is_err());
        assert!(PhysAddr::from_opaque(b"mbx:2:").is_err());
        assert!(PhysAddr::from_opaque(b"shm:2:").is_err());
        assert!(PhysAddr::from_opaque(b"shm:x:/p").is_err());
        assert!(PhysAddr::from_opaque(b"udp:1:127.0.0.1").is_err());
        assert!(PhysAddr::from_opaque(b"udp:1:127.0.0.1:notaport").is_err());
        assert!(PhysAddr::from_opaque(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn network_accessor() {
        let a = PhysAddr::Mbx {
            network: NetworkId(9),
            path: "/m".into(),
        };
        assert_eq!(a.network(), NetworkId(9));
        let b = PhysAddr::Tcp {
            network: NetworkId(4),
            host: "127.0.0.1".into(),
            port: 1,
        };
        assert_eq!(b.network(), NetworkId(4));
    }

    #[test]
    fn display_forms() {
        let a = PhysAddr::Mbx {
            network: NetworkId(2),
            path: "/mb".into(),
        };
        assert_eq!(a.to_string(), "mbx://net2/mb");
        let b = PhysAddr::Tcp {
            network: NetworkId(0),
            host: "127.0.0.1".into(),
            port: 80,
        };
        assert_eq!(b.to_string(), "tcp://net0/127.0.0.1:80");
        let c = PhysAddr::Shm {
            network: NetworkId(1),
            path: "/ring".into(),
        };
        assert_eq!(c.to_string(), "shm://net1/ring");
        let d = PhysAddr::Udp {
            network: NetworkId(3),
            host: "127.0.0.1".into(),
            port: 53,
        };
        assert_eq!(d.to_string(), "udp://net3/127.0.0.1:53");
    }
}
