//! Credit-based, per-circuit flow control for the NTCS reproduction.
//!
//! The paper's virtual circuits (§2.2, §4) assume the ND-layer "handles
//! flow control" without specifying a mechanism. This crate supplies the
//! missing discipline as a small, dependency-free library the Nucleus
//! layers compose:
//!
//! * [`CreditWindow`] — the **sender-side** account of how many bytes and
//!   frames the peer has granted on one circuit. Bulk sends debit it; a
//!   `Credit` control frame from the peer replenishes it.
//! * [`CreditLedger`] — the **receiver-side** account of how many bytes
//!   the application has drained from its inbox since the last grant.
//!   Once the drained total passes a low watermark it emits a delta
//!   grant for the sender's window.
//! * [`BoundedDeque`] — a capacity-checked queue that sheds its oldest
//!   entry on overflow instead of growing without bound. Used for the
//!   ND `rx_pending` queue and the LCM inbox even when credit flow
//!   control is disabled, so a runaway sender degrades to message loss
//!   rather than memory exhaustion.
//! * [`Lane`] — the priority-lane split: NTCS control traffic (naming,
//!   DRTS, observability, LCM acks) bypasses credit accounting so bulk
//!   data can never starve the protocols that keep circuits alive.
//!
//! End-to-end semantics: credit is managed between the *origin* sender's
//! LCM and the *terminal* receiver's LCM. Gateways relay `Credit` frames
//! opaquely like any other non-open frame, so a grant travels back across
//! a spliced IVC chain unchanged and the window bounds the bytes in
//! flight at **every** hop — transit queues can never hold more than the
//! terminal receiver has promised to absorb.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::vec_deque;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

/// Highest `type_id` reserved for NTCS-internal control messages.
///
/// The repo's message-id blocks are: naming protocol 1–18, DRTS and
/// observability 100–136, observability control 140–143, naming
/// invalidation push 144, URSA and applications 200+. Everything at or
/// below this boundary rides the [`Lane::Control`] lane and bypasses
/// credit accounting; everything above is [`Lane::Bulk`] and debits the
/// circuit's window. Both endpoints classify by the same constant, so
/// sender debits and receiver grants always agree.
pub const CONTROL_TYPE_MAX: u32 = 199;

/// Which priority lane a message occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// NTCS-internal control traffic: exempt from credit accounting so
    /// bulk data cannot starve naming, acks, or observability.
    Control,
    /// Application data: debits the circuit's credit window.
    Bulk,
}

impl Lane {
    /// Classifies a message `type_id` into its lane.
    ///
    /// `u32::MAX` (the LCM reliable-ack sentinel) is control; ids at or
    /// below [`CONTROL_TYPE_MAX`] are control; the rest are bulk.
    #[must_use]
    pub fn classify(type_id: u32) -> Self {
        if type_id <= CONTROL_TYPE_MAX || type_id == u32::MAX {
            Lane::Control
        } else {
            Lane::Bulk
        }
    }
}

/// What a sender does when the circuit's credit window is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPolicy {
    /// Wait (pumping protocol events) until the peer grants credit or
    /// the stall timeout elapses; on timeout the send fails with a
    /// transient error.
    Block,
    /// Drop the new message immediately and count a shed. Reliable
    /// sends are never silently lost: they fall through to the
    /// dead-letter path instead.
    ShedNewest,
    /// Hand the message to the PR-1 dead-letter hook immediately.
    DeadLetter,
}

/// Per-Nucleus flow-control settings, carried in `NucleusConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSettings {
    /// Master switch. When `false` no credit state is created and sends
    /// are never throttled (queues stay bounded regardless).
    pub enabled: bool,
    /// Bytes of bulk payload the peer may have in flight per circuit.
    pub window_bytes: u64,
    /// Frames of bulk payload the peer may have in flight per circuit.
    pub window_frames: u32,
    /// The receiver emits a replenishing grant once it has drained at
    /// least this many ungranted bytes from its inbox.
    pub low_watermark_bytes: u64,
    /// Policy applied when a send finds the window empty.
    pub policy: FlowPolicy,
    /// How long a [`FlowPolicy::Block`] send waits for credit before
    /// failing with a transient error.
    pub stall_timeout: Duration,
}

impl FlowSettings {
    /// Flow control disabled (the default): unlimited sending, bounded
    /// queues only.
    #[must_use]
    pub fn disabled() -> Self {
        FlowSettings {
            enabled: false,
            window_bytes: 256 * 1024,
            window_frames: 1024,
            low_watermark_bytes: 64 * 1024,
            policy: FlowPolicy::Block,
            stall_timeout: Duration::from_secs(5),
        }
    }

    /// Flow control enabled with the given per-circuit window; the low
    /// watermark defaults to a quarter of the byte window.
    #[must_use]
    pub fn enabled(window_bytes: u64, window_frames: u32) -> Self {
        FlowSettings {
            enabled: true,
            window_bytes: window_bytes.max(1),
            window_frames: window_frames.max(1),
            low_watermark_bytes: (window_bytes / 4).max(1),
            policy: FlowPolicy::Block,
            stall_timeout: Duration::from_secs(5),
        }
    }

    /// Sets the overflow policy.
    #[must_use]
    pub fn with_policy(mut self, policy: FlowPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the replenish low watermark in bytes.
    #[must_use]
    pub fn with_low_watermark(mut self, bytes: u64) -> Self {
        self.low_watermark_bytes = bytes.max(1);
        self
    }

    /// Sets how long a blocking send waits for credit.
    #[must_use]
    pub fn with_stall_timeout(mut self, timeout: Duration) -> Self {
        self.stall_timeout = timeout;
        self
    }
}

impl Default for FlowSettings {
    fn default() -> Self {
        FlowSettings::disabled()
    }
}

#[derive(Debug)]
struct WindowState {
    bytes: i64,
    frames: i64,
}

/// Sender-side credit account for one circuit.
///
/// Balances are signed: an oversized message sent against an *idle*
/// (full) window is allowed through and drives the balance negative, so
/// a message larger than the whole window can still make progress — the
/// window simply stays closed until the receiver has drained it all.
#[derive(Debug)]
pub struct CreditWindow {
    cap_bytes: i64,
    cap_frames: i64,
    state: Mutex<WindowState>,
}

impl CreditWindow {
    /// A window holding its full initial grant.
    #[must_use]
    pub fn new(window_bytes: u64, window_frames: u32) -> Self {
        let cap_bytes = i64::try_from(window_bytes.max(1)).unwrap_or(i64::MAX);
        let cap_frames = i64::from(window_frames.max(1));
        CreditWindow {
            cap_bytes,
            cap_frames,
            state: Mutex::new(WindowState {
                bytes: cap_bytes,
                frames: cap_frames,
            }),
        }
    }

    /// Tries to debit one frame of `payload_bytes`. Returns `true` on
    /// success. Succeeds when a frame credit is available and either the
    /// byte balance covers the payload or the window is idle at full
    /// capacity (the oversized-message escape hatch).
    #[must_use]
    pub fn try_acquire(&self, payload_bytes: usize) -> bool {
        let need = i64::try_from(payload_bytes).unwrap_or(i64::MAX);
        let mut st = self.state.lock().expect("credit window lock");
        if st.frames < 1 {
            return false;
        }
        if st.bytes < need && st.bytes < self.cap_bytes {
            return false;
        }
        st.bytes -= need;
        st.frames -= 1;
        true
    }

    /// Credits a grant of `bytes`/`frames` back, clamping at capacity.
    pub fn replenish(&self, bytes: u64, frames: u32) {
        let mut st = self.state.lock().expect("credit window lock");
        st.bytes = st
            .bytes
            .saturating_add(i64::try_from(bytes).unwrap_or(i64::MAX))
            .min(self.cap_bytes);
        st.frames = st
            .frames
            .saturating_add(i64::from(frames))
            .min(self.cap_frames);
    }

    /// Currently available byte credit (0 when overdrawn).
    #[must_use]
    pub fn available_bytes(&self) -> u64 {
        let st = self.state.lock().expect("credit window lock");
        u64::try_from(st.bytes.max(0)).unwrap_or(0)
    }

    /// Currently available frame credit (0 when overdrawn).
    #[must_use]
    pub fn available_frames(&self) -> u32 {
        let st = self.state.lock().expect("credit window lock");
        u32::try_from(st.frames.max(0)).unwrap_or(u32::MAX)
    }
}

#[derive(Debug, Default)]
struct LedgerState {
    drained_bytes: u64,
    drained_frames: u32,
}

/// Receiver-side drain account for one circuit: accumulates bytes the
/// application has consumed and decides when to emit a delta grant.
#[derive(Debug)]
pub struct CreditLedger {
    low_watermark_bytes: u64,
    grant_frame_trigger: u32,
    state: Mutex<LedgerState>,
}

impl CreditLedger {
    /// A ledger that grants once `low_watermark_bytes` have been drained
    /// (or half the frame window, whichever trips first).
    #[must_use]
    pub fn new(low_watermark_bytes: u64, window_frames: u32) -> Self {
        CreditLedger {
            low_watermark_bytes: low_watermark_bytes.max(1),
            grant_frame_trigger: (window_frames / 2).max(1),
            state: Mutex::new(LedgerState::default()),
        }
    }

    /// Records `payload_bytes` drained from the inbox. Returns
    /// `Some((bytes, frames))` when the accumulated drain crosses the
    /// watermark — the caller sends that delta to the peer as a `Credit`
    /// frame and the account resets.
    #[must_use]
    pub fn on_drain(&self, payload_bytes: usize) -> Option<(u64, u32)> {
        let mut st = self.state.lock().expect("credit ledger lock");
        st.drained_bytes = st
            .drained_bytes
            .saturating_add(u64::try_from(payload_bytes).unwrap_or(u64::MAX));
        st.drained_frames = st.drained_frames.saturating_add(1);
        if st.drained_bytes >= self.low_watermark_bytes
            || st.drained_frames >= self.grant_frame_trigger
        {
            let grant = (st.drained_bytes, st.drained_frames);
            st.drained_bytes = 0;
            st.drained_frames = 0;
            Some(grant)
        } else {
            None
        }
    }
}

/// A `VecDeque` with a hard capacity: pushing past it evicts the oldest
/// entry (returned to the caller for accounting) instead of growing.
#[derive(Debug)]
pub struct BoundedDeque<T> {
    items: VecDeque<T>,
    cap: usize,
}

impl<T> BoundedDeque<T> {
    /// An empty queue holding at most `cap` items (minimum 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        BoundedDeque {
            items: VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Appends `item`; if the queue was full, the evicted oldest entry
    /// is returned so the caller can count the shed.
    pub fn push_back(&mut self, item: T) -> Option<T> {
        let evicted = if self.items.len() >= self.cap {
            self.items.pop_front()
        } else {
            None
        };
        self.items.push_back(item);
        evicted
    }

    /// Removes and returns the oldest entry.
    pub fn pop_front(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Removes and returns the entry at `index`.
    pub fn remove(&mut self, index: usize) -> Option<T> {
        self.items.remove(index)
    }

    /// Number of queued entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates oldest-to-newest without consuming.
    pub fn iter(&self) -> vec_deque::Iter<'_, T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_split_control_from_bulk() {
        assert_eq!(Lane::classify(1), Lane::Control); // naming
        assert_eq!(Lane::classify(130), Lane::Control); // obs HopRecord
        assert_eq!(Lane::classify(144), Lane::Control); // NsInvalidate push
        assert_eq!(Lane::classify(CONTROL_TYPE_MAX), Lane::Control);
        assert_eq!(Lane::classify(u32::MAX), Lane::Control); // reliable ack
        assert_eq!(Lane::classify(200), Lane::Bulk); // ursa
        assert_eq!(Lane::classify(3000), Lane::Bulk); // app messages
    }

    #[test]
    fn window_debits_and_replenishes() {
        let w = CreditWindow::new(100, 3);
        assert!(w.try_acquire(60));
        assert_eq!(w.available_bytes(), 40);
        assert!(!w.try_acquire(60), "insufficient bytes");
        assert!(w.try_acquire(40));
        assert!(!w.try_acquire(1), "byte window closed");
        // One frame credit survived (failed byte-acquires do not debit), so
        // a 1-frame grant brings the balance to two.
        w.replenish(100, 1);
        assert_eq!(w.available_bytes(), 100);
        assert!(w.try_acquire(10));
        assert!(w.try_acquire(10));
        assert!(!w.try_acquire(10), "frame credit exhausted");
        w.replenish(20, 1);
        assert!(w.try_acquire(10));
    }

    #[test]
    fn idle_window_admits_oversized_message() {
        let w = CreditWindow::new(100, 4);
        assert!(w.try_acquire(500), "oversized send allowed when idle");
        assert_eq!(w.available_bytes(), 0, "balance clamped at zero view");
        assert!(!w.try_acquire(1), "window overdrawn");
        w.replenish(400, 1);
        assert!(
            !w.try_acquire(1),
            "still overdrawn by 0 after partial drain"
        );
        w.replenish(200, 1);
        assert_eq!(w.available_bytes(), 100, "clamped at capacity");
        assert!(w.try_acquire(100));
    }

    #[test]
    fn replenish_clamps_at_capacity() {
        let w = CreditWindow::new(50, 2);
        w.replenish(1_000_000, 100);
        assert_eq!(w.available_bytes(), 50);
        assert_eq!(w.available_frames(), 2);
    }

    #[test]
    fn ledger_grants_at_watermark() {
        let l = CreditLedger::new(100, 1000);
        assert_eq!(l.on_drain(40), None);
        assert_eq!(l.on_drain(40), None);
        assert_eq!(l.on_drain(40), Some((120, 3)));
        assert_eq!(l.on_drain(40), None, "account reset after grant");
    }

    #[test]
    fn ledger_grants_at_half_frame_window() {
        let l = CreditLedger::new(u64::MAX, 4);
        assert_eq!(l.on_drain(1), None);
        assert_eq!(l.on_drain(1), Some((2, 2)), "frame trigger at window/2");
    }

    #[test]
    fn bounded_deque_sheds_oldest() {
        let mut q = BoundedDeque::new(2);
        assert!(q.push_back(1).is_none());
        assert!(q.push_back(2).is_none());
        assert_eq!(q.push_back(3), Some(1), "oldest evicted");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_front(), Some(2));
        assert_eq!(q.pop_front(), Some(3));
        assert!(q.is_empty());
    }

    #[test]
    fn bounded_deque_positional_remove() {
        let mut q = BoundedDeque::new(8);
        for i in 0..4 {
            assert!(q.push_back(i).is_none());
        }
        let pos = q.iter().position(|&x| x == 2).expect("present");
        assert_eq!(q.remove(pos), Some(2));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn settings_builders_compose() {
        let s = FlowSettings::enabled(8192, 32)
            .with_policy(FlowPolicy::ShedNewest)
            .with_low_watermark(1024)
            .with_stall_timeout(Duration::from_millis(250));
        assert!(s.enabled);
        assert_eq!(s.window_bytes, 8192);
        assert_eq!(s.window_frames, 32);
        assert_eq!(s.low_watermark_bytes, 1024);
        assert_eq!(s.policy, FlowPolicy::ShedNewest);
        assert_eq!(s.stall_timeout, Duration::from_millis(250));
        assert!(!FlowSettings::default().enabled);
    }
}
