//! Hosted service loops and distributed process control.
//!
//! The paper's DRTS includes "distributed process management" (§1.2) and the
//! URSA testbed "dictated the need to dynamically add, modify, or replace
//! system modules, while in operation" (§1.2). [`ServiceHost`] runs a module
//! as a message loop that can be **relocated to another machine between
//! messages** — the driver for the paper's dynamic reconfiguration (§3.5) —
//! and [`ProcessController`] exposes that ability over the NTCS itself.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam_channel::{bounded, unbounded, Receiver, Sender};
use ntcs::{ComMod, Incoming, MachineId, NtcsError, Result, Testbed, UAdd};
use parking_lot::{Mutex, RwLock};

use crate::protocol::{CtlList, CtlRelocate, CtlReply, CtlStop};

/// The message handler of a hosted service.
pub type Handler = Box<dyn FnMut(&ComMod, Incoming) + Send>;

enum HostCmd {
    Relocate(MachineId, Sender<Result<()>>),
    Stop,
}

/// A module hosted on its own thread: receives messages, dispatches them to
/// a handler, and relocates between machines on command.
pub struct ServiceHost {
    name: String,
    cmd_tx: Sender<HostCmd>,
    thread: Option<JoinHandle<()>>,
    uadd: Arc<RwLock<UAdd>>,
    machine: Arc<RwLock<MachineId>>,
}

impl std::fmt::Debug for ServiceHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceHost")
            .field("name", &self.name)
            .field("uadd", &*self.uadd.read())
            .field("machine", &*self.machine.read())
            .finish()
    }
}

impl ServiceHost {
    /// Spawns a hosted service: binds and registers a ComMod named `name`
    /// on `machine`, then loops `handler` over incoming messages.
    ///
    /// # Errors
    ///
    /// Binding/registration failures.
    pub fn spawn(
        testbed: &Testbed,
        machine: MachineId,
        name: &str,
        handler: Handler,
    ) -> Result<ServiceHost> {
        let attrs = ntcs::AttrSet::named(name)?;
        Self::spawn_with_attrs(testbed, machine, &attrs, handler)
    }

    /// Spawns a hosted service registered under a full attribute set (the
    /// §7 attribute-value naming extension). The set must include a `name`
    /// attribute, which becomes the host's service name.
    ///
    /// # Errors
    ///
    /// Binding/registration failures, or a missing `name` attribute.
    pub fn spawn_with_attrs(
        testbed: &Testbed,
        machine: MachineId,
        attrs: &ntcs::AttrSet,
        mut handler: Handler,
    ) -> Result<ServiceHost> {
        let name = attrs
            .name()
            .ok_or_else(|| NtcsError::InvalidArgument("attrs lack a name".into()))?
            .to_owned();
        let name = name.as_str();
        let commod = testbed.commod(machine, name)?;
        commod.register_attrs(attrs)?;
        let uadd = Arc::new(RwLock::new(commod.my_uadd()));
        let machine_slot = Arc::new(RwLock::new(machine));
        let (cmd_tx, cmd_rx): (Sender<HostCmd>, Receiver<HostCmd>) = unbounded();
        let thread = {
            let uadd = Arc::clone(&uadd);
            let machine_slot = Arc::clone(&machine_slot);
            let name = name.to_owned();
            std::thread::Builder::new()
                .name(format!("svc-{name}"))
                .spawn(move || {
                    let mut commod = commod;
                    loop {
                        match cmd_rx.try_recv() {
                            Ok(HostCmd::Stop) => {
                                let _ = commod.deregister();
                                commod.shutdown();
                                return;
                            }
                            Ok(HostCmd::Relocate(target, done)) => {
                                // Relocation happens *between* messages — the
                                // paper's "minor perturbation on these
                                // conversations" (§1.3).
                                match commod.relocate_to(target) {
                                    Ok(new) => {
                                        commod = new;
                                        *uadd.write() = commod.my_uadd();
                                        *machine_slot.write() = target;
                                        let _ = done.send(Ok(()));
                                    }
                                    Err(e) => {
                                        // Keep serving from the old binding.
                                        let _ = done.send(Err(e.error));
                                        commod = e.commod;
                                    }
                                }
                            }
                            Err(_) => {}
                        }
                        match commod.receive(Some(Duration::from_millis(50))) {
                            Ok(msg) => handler(&commod, msg),
                            Err(NtcsError::Timeout) => {}
                            Err(_) => return,
                        }
                    }
                })
                .map_err(|e| NtcsError::Ipcs(format!("spawn service thread: {e}")))?
        };
        Ok(ServiceHost {
            name: name.to_owned(),
            cmd_tx,
            thread: Some(thread),
            uadd,
            machine: machine_slot,
        })
    }

    /// The service's registered name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The service's *current* UAdd (changes on relocation).
    #[must_use]
    pub fn uadd(&self) -> UAdd {
        *self.uadd.read()
    }

    /// The machine the service currently runs on.
    #[must_use]
    pub fn machine(&self) -> MachineId {
        *self.machine.read()
    }

    /// Relocates the service to another machine, blocking until done.
    ///
    /// # Errors
    ///
    /// Relocation failures (the service keeps running where it is on a bind
    /// failure, and dies on a partial failure — surfaced here).
    pub fn relocate(&self, target: MachineId) -> Result<()> {
        let (done_tx, done_rx) = bounded(1);
        self.cmd_tx
            .send(HostCmd::Relocate(target, done_tx))
            .map_err(|_| NtcsError::ShutDown)?;
        done_rx
            .recv_timeout(Duration::from_secs(10))
            .map_err(|_| NtcsError::Timeout)?
    }

    /// Stops the service (deregisters and shuts down).
    pub fn stop(mut self) {
        let _ = self.cmd_tx.send(HostCmd::Stop);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServiceHost {
    fn drop(&mut self) {
        let _ = self.cmd_tx.send(HostCmd::Stop);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The distributed process-management service: relocates and stops hosted
/// services on command, **over the NTCS** (it is itself a hosted service).
pub struct ProcessController {
    host: ServiceHost,
    registry: Arc<Mutex<Vec<ServiceHost>>>,
}

impl std::fmt::Debug for ProcessController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessController")
            .field("services", &self.registry.lock().len())
            .finish()
    }
}

impl ProcessController {
    /// Spawns the controller module (registered as `proc-ctl`) on `machine`.
    ///
    /// # Errors
    ///
    /// Binding/registration failures.
    pub fn spawn(testbed: &Testbed, machine: MachineId) -> Result<ProcessController> {
        let registry: Arc<Mutex<Vec<ServiceHost>>> = Arc::new(Mutex::new(Vec::new()));
        let reg2 = Arc::clone(&registry);
        let handler: Handler = Box::new(move |commod, msg| {
            if msg.is::<CtlRelocate>() {
                let Ok(req) = msg.decode::<CtlRelocate>() else {
                    return;
                };
                let target = MachineId(req.target_machine);
                let reg = reg2.lock();
                let reply = match reg.iter().find(|h| h.name() == req.service) {
                    Some(h) => match h.relocate(target) {
                        Ok(()) => CtlReply {
                            ok: true,
                            detail: format!("{} now on {target}", req.service),
                        },
                        Err(e) => CtlReply {
                            ok: false,
                            detail: e.to_string(),
                        },
                    },
                    None => CtlReply {
                        ok: false,
                        detail: format!("unknown service {:?}", req.service),
                    },
                };
                drop(reg);
                let _ = commod.reply(&msg, &reply);
            } else if msg.is::<CtlStop>() {
                let Ok(req) = msg.decode::<CtlStop>() else {
                    return;
                };
                let mut reg = reg2.lock();
                let found = reg.iter().position(|h| h.name() == req.service);
                let reply = match found {
                    Some(i) => {
                        let h = reg.remove(i);
                        h.stop();
                        CtlReply {
                            ok: true,
                            detail: format!("{} stopped", req.service),
                        }
                    }
                    None => CtlReply {
                        ok: false,
                        detail: format!("unknown service {:?}", req.service),
                    },
                };
                drop(reg);
                let _ = commod.reply(&msg, &reply);
            } else if msg.is::<CtlList>() {
                let reg = reg2.lock();
                let listing = reg
                    .iter()
                    .map(|h| format!("{} @ {} ({})", h.name(), h.machine(), h.uadd()))
                    .collect::<Vec<_>>()
                    .join("\n");
                drop(reg);
                let _ = commod.reply(
                    &msg,
                    &CtlReply {
                        ok: true,
                        detail: listing,
                    },
                );
            }
        });
        let host = ServiceHost::spawn(testbed, machine, "proc-ctl", handler)?;
        Ok(ProcessController { host, registry })
    }

    /// Places a hosted service under this controller's management.
    pub fn manage(&self, host: ServiceHost) {
        self.registry.lock().push(host);
    }

    /// The controller's UAdd (send it [`CtlRelocate`]/[`CtlStop`]/
    /// [`CtlList`]).
    #[must_use]
    pub fn uadd(&self) -> UAdd {
        self.host.uadd()
    }

    /// Stops the controller and every managed service.
    pub fn stop(self) {
        for h in self.registry.lock().drain(..) {
            h.stop();
        }
        self.host.stop();
    }
}
