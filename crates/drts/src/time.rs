//! The precision time corrector (paper §1.3, reference \[27\]).
//!
//! Each simulated machine's clock is skewed and drifting
//! ([`ntcs::SimClock`]); the time service is a reference module that other
//! modules query over the NTCS with a Cristian-style exchange, applying a
//! correction so corrected local time converges on the reference. The
//! exchange itself rides the same messaging stack it serves — the §6.1
//! recursion ("a time correction may involve multiple messages to multiple
//! modules").

use std::time::Duration;

use ntcs::{ComMod, MachineId, Result, SimClock, Testbed, UAdd};

use crate::host::{Handler, ServiceHost};
use crate::protocol::{TimeReply, TimeRequest};

/// The reference time module.
#[derive(Debug)]
pub struct TimeService {
    host: ServiceHost,
}

/// The registered name of the time service.
pub const TIME_SERVICE_NAME: &str = "time-service";

impl TimeService {
    /// Spawns the reference module on `machine`. That machine's clock *is*
    /// the reference, so place it on a machine with a trusted clock (the
    /// paper's corrector likewise designated a reference).
    ///
    /// # Errors
    ///
    /// Binding/registration failures.
    pub fn spawn(testbed: &Testbed, machine: MachineId) -> Result<TimeService> {
        let clock = testbed.world().clock(machine)?;
        let handler: Handler = Box::new(move |commod, msg| {
            if msg.is::<TimeRequest>() {
                let Ok(req) = msg.decode::<TimeRequest>() else {
                    return;
                };
                let _ = commod.reply(
                    &msg,
                    &TimeReply {
                        client_send_us: req.client_send_us,
                        server_time_us: clock.now_us(),
                    },
                );
            }
        });
        let host = ServiceHost::spawn(testbed, machine, TIME_SERVICE_NAME, handler)?;
        Ok(TimeService { host })
    }

    /// The service's UAdd.
    #[must_use]
    pub fn uadd(&self) -> UAdd {
        self.host.uadd()
    }

    /// Stops the service.
    pub fn stop(self) {
        self.host.stop();
    }

    /// Runs one synchronization from `commod`'s machine against the service
    /// at `server`: `rounds` exchanges, keeping the minimum-RTT sample, then
    /// applies the correction to `clock`.
    ///
    /// # Errors
    ///
    /// Transport failures or timeout.
    pub fn sync(commod: &ComMod, clock: &SimClock, server: UAdd, rounds: u32) -> Result<SyncStats> {
        let mut best_rtt = i64::MAX;
        let mut best_delta = 0i64;
        for _ in 0..rounds.max(1) {
            let t0 = clock.now_us();
            let reply = commod.send_receive(
                server,
                &TimeRequest { client_send_us: t0 },
                Some(Duration::from_secs(5)),
            )?;
            let t1 = clock.now_us();
            let rep: TimeReply = reply.decode()?;
            let rtt = (t1 - t0).max(0);
            // Cristian: the server's clock read happened roughly rtt/2 ago.
            let server_now = rep.server_time_us + rtt / 2;
            let delta = server_now - t1;
            if rtt < best_rtt {
                best_rtt = rtt;
                best_delta = delta;
            }
        }
        clock.adjust_correction_us(best_delta);
        Ok(SyncStats {
            rounds,
            best_rtt_us: best_rtt,
            applied_delta_us: best_delta,
            residual_error_us: clock.error_us(),
        })
    }
}

/// Outcome of one synchronization.
#[derive(Debug, Clone, Copy)]
pub struct SyncStats {
    /// Exchanges performed.
    pub rounds: u32,
    /// Best round-trip observed, µs.
    pub best_rtt_us: i64,
    /// Correction applied this sync, µs.
    pub applied_delta_us: i64,
    /// |corrected − true| after the sync, µs (testbed metric; a real system
    /// could not observe this).
    pub residual_error_us: i64,
}
