//! The DRTS runtime: wires a module's ComMod to the time service and
//! monitor — the §6.1 recursion, reproduced.
//!
//! "As the application level Send is initiated … \[a\] time stamp for monitor
//! data [is generated]. A distributed time primitive is called, which may
//! recursively call on the ComMod to communicate with its support module.
//! … Upon success, the LCM-layer sends data to the monitor by calling
//! itself. … (time correction and monitoring are disabled here, to avoid
//! the obvious infinite recursion)."
//!
//! [`DrtsRuntime`] implements [`ntcs::DrtsHooks`]: each timestamp may
//! trigger a time-service exchange *through the same ComMod that asked for
//! the timestamp*, and each monitor event is cast through it as well. A
//! re-entrancy guard self-disables the hooks during their own traffic,
//! exactly as the paper prescribes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use ntcs::{ComMod, DrtsHooks, MonitorEvent, SimClock, UAdd};
use parking_lot::Mutex;

use crate::protocol::{kind_code, MonitorRecord};
use crate::time::TimeService;

/// Per-module DRTS glue: the [`ntcs::DrtsHooks`] implementation.
pub struct DrtsRuntime {
    commod: Weak<ComMod>,
    clock: SimClock,
    time_server: Option<UAdd>,
    monitor: Option<UAdd>,
    sync_interval: Duration,
    /// Reference microseconds (from the machine clock's timebase) of the
    /// last successful time-service exchange — *not* wall time, so a
    /// virtual-time run decides staleness purely from simulated time.
    last_sync: Mutex<Option<i64>>,
    /// Re-entrancy guard: true while the hooks themselves are talking.
    busy: AtomicBool,
    /// Time-service exchanges performed (experiment E8 metric).
    pub time_exchanges: AtomicU64,
    /// Monitor records cast (experiment E8 metric).
    pub monitor_casts: AtomicU64,
}

impl std::fmt::Debug for DrtsRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DrtsRuntime")
            .field("time_server", &self.time_server)
            .field("monitor", &self.monitor)
            .finish()
    }
}

impl DrtsRuntime {
    /// Attaches DRTS hooks to a module's ComMod. Pass `None` for services
    /// the module should not use (the time service and monitor themselves
    /// run with no hooks at all).
    pub fn attach(
        commod: &Arc<ComMod>,
        time_server: Option<UAdd>,
        monitor: Option<UAdd>,
        sync_interval: Duration,
    ) -> Arc<DrtsRuntime> {
        let clock = commod
            .world()
            .clock(commod.machine())
            .expect("module machine exists");
        let rt = Arc::new(DrtsRuntime {
            commod: Arc::downgrade(commod),
            clock,
            time_server,
            monitor,
            sync_interval,
            last_sync: Mutex::new(None),
            busy: AtomicBool::new(false),
            time_exchanges: AtomicU64::new(0),
            monitor_casts: AtomicU64::new(0),
        });
        commod.set_hooks(rt.clone());
        rt
    }

    /// The corrected clock this runtime maintains.
    #[must_use]
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Forces a synchronization on the next timestamp.
    pub fn invalidate_sync(&self) {
        *self.last_sync.lock() = None;
    }
}

impl DrtsHooks for DrtsRuntime {
    fn timestamp_us(&self) -> i64 {
        if let Some(server) = self.time_server {
            // Only sync when stale, and never while the hooks themselves are
            // talking (the §6.1 recursion cut-off).
            let interval_us = i64::try_from(self.sync_interval.as_micros()).unwrap_or(i64::MAX);
            let stale = self
                .last_sync
                .lock()
                .is_none_or(|t| self.clock.true_us().saturating_sub(t) >= interval_us);
            if stale && !self.busy.swap(true, Ordering::SeqCst) {
                if let Some(commod) = self.commod.upgrade() {
                    if TimeService::sync(&commod, &self.clock, server, 1).is_ok() {
                        self.time_exchanges.fetch_add(1, Ordering::Relaxed);
                        *self.last_sync.lock() = Some(self.clock.true_us());
                    }
                }
                self.busy.store(false, Ordering::SeqCst);
            }
        }
        self.clock.now_us()
    }

    fn monitor_event(&self, event: MonitorEvent) {
        let Some(monitor) = self.monitor else { return };
        // Drop our own traffic's events — "monitoring [is] disabled here, to
        // avoid the obvious infinite recursion" (§6.1).
        if self.busy.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(commod) = self.commod.upgrade() {
            let rec = MonitorRecord {
                module: event.module.raw(),
                module_name: event.module_name,
                kind: kind_code(event.kind),
                peer: event.peer.raw(),
                msg_id: event.msg_id,
                timestamp_us: event.timestamp_us,
            };
            if commod.cast(monitor, &rec).is_ok() {
                self.monitor_casts.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.busy.store(false, Ordering::SeqCst);
    }
}
