//! The distributed error logger.
//!
//! §6.3: "one negative side effect of recovering from these conditions is
//! that the better the system is at it, the less one may know about how it
//! is actually running. … a running table of errors could be maintained and
//! monitored." This service is that running table, built — like everything
//! else in the DRTS — as an ordinary module on top of the NTCS.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use ntcs::{ComMod, MachineId, NtcsError, Result, Testbed, UAdd};
use parking_lot::Mutex;

use crate::host::{Handler, ServiceHost};
use crate::protocol::{ErrLogQuery, ErrLogReply, ErrorRecord};

/// The registered name of the error log.
pub const ERROR_LOG_NAME: &str = "error-log";

const RING_CAP: usize = 4096;

/// The running error-log module.
#[derive(Debug)]
pub struct ErrorLogService {
    host: ServiceHost,
    records: Arc<Mutex<VecDeque<ErrorRecord>>>,
}

impl ErrorLogService {
    /// Spawns the error log on `machine`.
    ///
    /// # Errors
    ///
    /// Binding/registration failures.
    pub fn spawn(testbed: &Testbed, machine: MachineId) -> Result<ErrorLogService> {
        let records: Arc<Mutex<VecDeque<ErrorRecord>>> = Arc::new(Mutex::new(VecDeque::new()));
        let rs = Arc::clone(&records);
        let handler: Handler = Box::new(move |commod, msg| {
            if msg.is::<ErrorRecord>() {
                if let Ok(rec) = msg.decode::<ErrorRecord>() {
                    let mut r = rs.lock();
                    if r.len() == RING_CAP {
                        r.pop_front();
                    }
                    r.push_back(rec);
                }
            } else if msg.is::<ErrLogQuery>() {
                let Ok(q) = msg.decode::<ErrLogQuery>() else {
                    return;
                };
                let r = rs.lock();
                let take = (q.limit as usize).min(r.len());
                let records: Vec<ErrorRecord> = r.iter().skip(r.len() - take).cloned().collect();
                drop(r);
                let _ = commod.reply(&msg, &ErrLogReply { records });
            }
        });
        let host = ServiceHost::spawn(testbed, machine, ERROR_LOG_NAME, handler)?;
        Ok(ErrorLogService { host, records })
    }

    /// The log's UAdd.
    #[must_use]
    pub fn uadd(&self) -> UAdd {
        self.host.uadd()
    }

    /// Local view of the newest `limit` records.
    #[must_use]
    pub fn tail(&self, limit: usize) -> Vec<ErrorRecord> {
        let r = self.records.lock();
        let take = limit.min(r.len());
        r.iter().skip(r.len() - take).cloned().collect()
    }

    /// Remote query through the NTCS.
    ///
    /// # Errors
    ///
    /// Transport failures or timeout.
    pub fn query(commod: &ComMod, log: UAdd, limit: u32) -> Result<Vec<ErrorRecord>> {
        let reply =
            commod.send_receive(log, &ErrLogQuery { limit }, Some(Duration::from_secs(5)))?;
        let rep: ErrLogReply = reply.decode()?;
        Ok(rep.records)
    }

    /// Stops the service.
    pub fn stop(self) {
        self.host.stop();
    }
}

/// Reports an error condition to the distributed log (best-effort).
///
/// # Errors
///
/// Argument errors only; losses are silent, as for any connectionless send.
pub fn log_error(
    commod: &ComMod,
    log: UAdd,
    layer: &str,
    error: &NtcsError,
    detail: &str,
    timestamp_us: i64,
) -> Result<()> {
    commod.cast(
        log,
        &ErrorRecord {
            module: commod.my_uadd().raw(),
            module_name: commod.name_hint().to_owned(),
            layer: layer.to_owned(),
            code: error.wire_code(),
            detail: detail.to_owned(),
            timestamp_us,
        },
    )
}
