//! Wire messages of the DRTS services (type-id block 100-149).

use ntcs_wire::ntcs_message;

ntcs_message! {
    /// Time-service request (Cristian-style exchange).
    pub struct TimeRequest: 100 {
        /// Client's uncorrected local clock at send, µs.
        pub client_send_us: i64,
    }

    /// Time-service reply.
    pub struct TimeReply: 101 {
        /// Echo of the client's send time.
        pub client_send_us: i64,
        /// The reference clock at the server when it replied, µs.
        pub server_time_us: i64,
    }

    /// One monitor record (cast to the monitor module).
    pub struct MonitorRecord: 102 {
        /// Reporting module's UAdd (raw).
        pub module: u64,
        /// Reporting module's name hint.
        pub module_name: String,
        /// Event kind code (see `kind_code`).
        pub kind: u32,
        /// Peer UAdd (raw; 0 = none).
        pub peer: u64,
        /// Message id (0 = none).
        pub msg_id: u64,
        /// Corrected timestamp, µs since the testbed epoch.
        pub timestamp_us: i64,
    }

    /// Monitor aggregate query.
    pub struct MonitorQuery: 103 {
        /// Restrict to one module's UAdd (raw; 0 = all).
        pub module: u64,
    }

    /// Monitor aggregate reply.
    pub struct MonitorReply: 104 {
        /// Total records matching.
        pub total: u64,
        /// Sends.
        pub sends: u64,
        /// Receives.
        pub receives: u64,
        /// Circuit opens.
        pub circuit_opens: u64,
        /// Address faults.
        pub address_faults: u64,
        /// Reconnects.
        pub reconnects: u64,
        /// Most recent timestamps observed, µs.
        pub last_timestamp_us: i64,
    }

    /// Process control: relocate a hosted service to another machine.
    pub struct CtlRelocate: 110 {
        /// The hosted service's registered name.
        pub service: String,
        /// Target machine raw id.
        pub target_machine: u32,
    }

    /// Process control: stop a hosted service.
    pub struct CtlStop: 111 {
        /// The hosted service's registered name.
        pub service: String,
    }

    /// Process control: list hosted services.
    pub struct CtlList: 112 { }

    /// Process-control reply.
    pub struct CtlReply: 113 {
        /// Whether the command was applied.
        pub ok: bool,
        /// Detail or listing (newline-separated for `CtlList`).
        pub detail: String,
    }

    /// One error record (cast to the error log).
    pub struct ErrorRecord: 120 {
        /// Reporting module's UAdd (raw).
        pub module: u64,
        /// Reporting module's name hint.
        pub module_name: String,
        /// Layer name ("LCM", "ND", …).
        pub layer: String,
        /// Error wire code.
        pub code: u32,
        /// Human-readable detail.
        pub detail: String,
        /// Timestamp, µs since the testbed epoch.
        pub timestamp_us: i64,
    }

    /// Error-log query.
    pub struct ErrLogQuery: 121 {
        /// Maximum records to return.
        pub limit: u32,
    }

    /// Error-log reply.
    pub struct ErrLogReply: 122 {
        /// Matching records, newest last.
        pub records: Vec<ErrorRecord>,
    }
}

/// Maps a monitor event kind to its wire code.
#[must_use]
pub fn kind_code(kind: ntcs::MonitorEventKind) -> u32 {
    match kind {
        ntcs::MonitorEventKind::Send => 1,
        ntcs::MonitorEventKind::Receive => 2,
        ntcs::MonitorEventKind::CircuitOpen => 3,
        ntcs::MonitorEventKind::AddressFault => 4,
        ntcs::MonitorEventKind::Reconnect => 5,
        ntcs::MonitorEventKind::DeadLetter => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntcs::MachineType;
    use ntcs_wire::{encode_payload, ConvMode, InboundPayload, Message};

    #[test]
    fn records_round_trip() {
        let rec = MonitorRecord {
            module: 0x100,
            module_name: "searcher".into(),
            kind: 1,
            peer: 0x101,
            msg_id: 9,
            timestamp_us: -12,
        };
        let bytes = encode_payload(&rec, ConvMode::Packed, MachineType::Vax);
        let inbound = InboundPayload {
            type_id: MonitorRecord::TYPE_ID,
            mode: ConvMode::Packed,
            src_machine: MachineType::Vax,
            bytes,
        };
        assert_eq!(
            inbound.decode::<MonitorRecord>(MachineType::Sun).unwrap(),
            rec
        );
    }

    #[test]
    fn kind_codes_distinct() {
        let codes = [
            kind_code(ntcs::MonitorEventKind::Send),
            kind_code(ntcs::MonitorEventKind::Receive),
            kind_code(ntcs::MonitorEventKind::CircuitOpen),
            kind_code(ntcs::MonitorEventKind::AddressFault),
            kind_code(ntcs::MonitorEventKind::Reconnect),
            kind_code(ntcs::MonitorEventKind::DeadLetter),
        ];
        let mut s = codes.to_vec();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), codes.len());
    }

    #[test]
    fn error_log_round_trip() {
        let rec = ErrorRecord {
            module: 1,
            module_name: "m".into(),
            layer: "LCM".into(),
            code: 2,
            detail: "circuit closed".into(),
            timestamp_us: 5,
        };
        let q = ErrLogReply { records: vec![rec] };
        let bytes = encode_payload(&q, ConvMode::Image, MachineType::Sun);
        let inbound = InboundPayload {
            type_id: ErrLogReply::TYPE_ID,
            mode: ConvMode::Image,
            src_machine: MachineType::Sun,
            bytes,
        };
        assert_eq!(
            inbound.decode::<ErrLogReply>(MachineType::Apollo).unwrap(),
            q
        );
    }
}
