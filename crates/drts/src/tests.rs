//! DRTS end-to-end tests: the §6.1 recursion scenario, time correction on
//! skewed clocks, process control, and the error log.

use std::sync::Arc;
use std::time::Duration;

use ntcs::{MachineType, NetKind, Testbed};
use ntcs_wire::ntcs_message;

use crate::errlog::{log_error, ErrorLogService};
use crate::host::{Handler, ProcessController, ServiceHost};
use crate::monitor::MonitorService;
use crate::protocol::{CtlList, CtlRelocate, CtlReply};
use crate::runtime::DrtsRuntime;
use crate::time::TimeService;

ntcs_message! {
    pub struct Work: 900 { pub n: u32 }
    pub struct Done: 901 { pub n: u32 }
}

const T: Option<Duration> = Some(Duration::from_secs(10));

struct Lab {
    testbed: Testbed,
    machines: Vec<ntcs::MachineId>,
}

fn lab(skews_us: &[i64]) -> Lab {
    let mut tb = Testbed::builder();
    let net = tb.add_network(NetKind::Mbx, "lab");
    let mut machines = Vec::new();
    for (i, &skew) in skews_us.iter().enumerate() {
        let mt = [MachineType::Sun, MachineType::Vax, MachineType::Apollo][i % 3];
        machines.push(
            tb.add_machine_with_skew(mt, &format!("h{i}"), &[net], skew, 0.0)
                .unwrap(),
        );
    }
    tb.name_server_on(machines[0]);
    Lab {
        testbed: tb.start().unwrap(),
        machines,
    }
}

#[test]
fn time_sync_corrects_skewed_clock() {
    // h0 (reference, zero skew) hosts the time service; h1 is 80 ms off.
    let lab = lab(&[0, 80_000]);
    let ts = TimeService::spawn(&lab.testbed, lab.machines[0]).unwrap();
    let client = lab.testbed.module(lab.machines[1], "skewed").unwrap();
    let clock = lab.testbed.world().clock(lab.machines[1]).unwrap();
    assert!(clock.error_us() > 50_000, "precondition: clock is skewed");
    let stats = TimeService::sync(&client, &clock, ts.uadd(), 5).unwrap();
    assert!(
        stats.residual_error_us < 20_000,
        "correction left {} µs of error (rtt {} µs)",
        stats.residual_error_us,
        stats.best_rtt_us
    );
    ts.stop();
}

#[test]
fn first_send_recursion_scenario() {
    // The §6.1 scenario: first send with monitoring and time correction
    // enabled triggers naming + time + monitor traffic; steady-state sends
    // do not.
    let lab = lab(&[0, 30_000, 0]);
    let ts = TimeService::spawn(&lab.testbed, lab.machines[0]).unwrap();
    let monitor = MonitorService::spawn(&lab.testbed, lab.machines[2]).unwrap();

    // A plain echo server (no hooks).
    let echo_handler: Handler = Box::new(|commod, msg| {
        if let Ok(w) = msg.decode::<Work>() {
            let _ = commod.reply(&msg, &Done { n: w.n });
        }
    });
    let _echo = ServiceHost::spawn(&lab.testbed, lab.machines[0], "echo", echo_handler).unwrap();

    // The instrumented client, with both DRTS services wired in.
    let client = Arc::new(lab.testbed.module(lab.machines[1], "client").unwrap());
    let rt = DrtsRuntime::attach(
        &client,
        Some(ts.uadd()),
        Some(monitor.uadd()),
        Duration::from_secs(3600), // sync once, then cached
    );

    let dst = client.locate("echo").unwrap();
    let before = client.metrics();
    let reply = client.send_receive(dst, &Work { n: 1 }, T).unwrap();
    assert_eq!(reply.decode::<Done>().unwrap().n, 1);
    let after_first = client.metrics();

    // First send: a time exchange happened, monitor records were cast, and
    // the naming service was consulted — message amplification.
    assert!(rt.time_exchanges.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    assert!(rt.monitor_casts.load(std::sync::atomic::Ordering::Relaxed) >= 1);
    assert!(after_first.ns_lookups > before.ns_lookups);
    let first_cost = after_first.sends - before.sends;

    // Steady state: no naming, no time exchange; only the payload + monitor.
    let reply = client.send_receive(dst, &Work { n: 2 }, T).unwrap();
    assert_eq!(reply.decode::<Done>().unwrap().n, 2);
    let after_second = client.metrics();
    let second_cost = after_second.sends - after_first.sends;
    assert!(
        second_cost < first_cost,
        "first send cost {first_cost} messages, second {second_cost}"
    );
    assert_eq!(after_second.ns_lookups, after_first.ns_lookups);

    // The monitor really did observe the client's traffic (recursively,
    // over the NTCS itself).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = monitor.stats(client.my_uadd().raw());
        if stats.sends >= 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "monitor never saw the client's sends: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    monitor.stop();
    ts.stop();
}

#[test]
fn process_controller_relocates_service_over_the_ntcs() {
    let lab = lab(&[0, 0, 0]);
    let ctl = ProcessController::spawn(&lab.testbed, lab.machines[0]).unwrap();

    let worker_handler: Handler = Box::new(|commod, msg| {
        if let Ok(w) = msg.decode::<Work>() {
            let _ = commod.reply(&msg, &Done { n: w.n * 10 });
        }
    });
    let worker =
        ServiceHost::spawn(&lab.testbed, lab.machines[1], "worker", worker_handler).unwrap();
    let worker_uadd_before = worker.uadd();
    ctl.manage(worker);

    let operator = lab.testbed.module(lab.machines[2], "operator").unwrap();
    let worker_addr = operator.locate("worker").unwrap();
    let reply = operator
        .send_receive(worker_addr, &Work { n: 3 }, T)
        .unwrap();
    assert_eq!(reply.decode::<Done>().unwrap().n, 30);

    // Ask the controller — over the NTCS — to move the worker to machine 2.
    let reply = operator
        .send_receive(
            ctl.uadd(),
            &CtlRelocate {
                service: "worker".into(),
                target_machine: lab.machines[2].0,
            },
            T,
        )
        .unwrap();
    let ctl_reply: CtlReply = reply.decode().unwrap();
    assert!(ctl_reply.ok, "{}", ctl_reply.detail);

    // The operator keeps using the OLD address; transparency does the rest.
    let reply = operator
        .send_receive(worker_addr, &Work { n: 4 }, T)
        .unwrap();
    assert_eq!(reply.decode::<Done>().unwrap().n, 40);
    assert!(operator.metrics().reconnects >= 1);

    // Listing shows the new placement.
    let reply = operator
        .send_receive(ctl.uadd(), &CtlList::default(), T)
        .unwrap();
    let listing: CtlReply = reply.decode().unwrap();
    assert!(listing.detail.contains("worker"));
    assert!(listing.detail.contains(&lab.machines[2].to_string()));
    let _ = worker_uadd_before;
    ctl.stop();
}

#[test]
fn error_log_collects_reports() {
    let lab = lab(&[0, 0]);
    let errlog = ErrorLogService::spawn(&lab.testbed, lab.machines[0]).unwrap();
    let module = lab.testbed.module(lab.machines[1], "reporter").unwrap();
    let log_addr = module.locate(crate::errlog::ERROR_LOG_NAME).unwrap();
    assert_eq!(log_addr, errlog.uadd());
    for i in 0..3 {
        log_error(
            &module,
            log_addr,
            "LCM",
            &ntcs::NtcsError::ConnectionClosed,
            &format!("probe {i}"),
            i,
        )
        .unwrap();
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if errlog.tail(10).len() >= 3 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "records never arrived"
        );
        std::thread::sleep(Duration::from_millis(30));
    }
    let remote = ErrorLogService::query(&module, log_addr, 2).unwrap();
    assert_eq!(remote.len(), 2);
    assert_eq!(remote[1].detail, "probe 2");
    assert_eq!(remote[1].layer, "LCM");
    errlog.stop();
}

#[test]
fn monitor_remote_query() {
    let lab = lab(&[0, 0]);
    let monitor = MonitorService::spawn(&lab.testbed, lab.machines[0]).unwrap();
    let client = Arc::new(lab.testbed.module(lab.machines[1], "probe").unwrap());
    let _rt = DrtsRuntime::attach(&client, None, Some(monitor.uadd()), Duration::from_secs(1));
    // Generate an event, then query over the NTCS.
    let self_addr = client.locate("probe").unwrap();
    let _ = client.ping(self_addr, T);
    let _ = client.cast(monitor.uadd(), &Work { n: 0 }); // ignored kind
    std::thread::sleep(Duration::from_millis(100));
    let stats = MonitorService::query(&client, monitor.uadd(), 0).unwrap();
    assert!(stats.total >= 1, "{stats:?}");
    monitor.stop();
}
