//! The distributed network monitor (paper §1.3, reference \[27\]).
//!
//! "A distributed network monitor … \[has\] been developed by another project
//! member, on top of the NTCS. Since the NTCS itself utilizes \[it\],
//! recursive operation … is observed." Modules cast [`MonitorRecord`]s here
//! (via their [`crate::DrtsRuntime`] hooks); the monitor aggregates them and
//! answers [`MonitorQuery`]s over the same NTCS.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use ntcs::{
    cluster_snapshot_json, json_escape, ComMod, HopRecord, MachineId, ObsCollect, ObsCollectReply,
    Result, Testbed, TraceQuery, TraceReply, UAdd,
};
use parking_lot::Mutex;

use crate::host::{Handler, ServiceHost};
use crate::protocol::{MonitorQuery, MonitorRecord, MonitorReply};

/// The registered name of the monitor.
pub const MONITOR_NAME: &str = "monitor";

const RING_CAP: usize = 10_000;

#[derive(Debug, Default)]
struct MonState {
    records: VecDeque<MonitorRecord>,
    /// Per-hop causal-trace reports, tagged with an arrival index so hops
    /// with equal (skew-corrected) timestamps keep a stable order.
    hops: VecDeque<(u64, HopRecord)>,
    next_arrival: u64,
}

impl MonState {
    fn ingest(&mut self, rec: MonitorRecord) {
        if self.records.len() == RING_CAP {
            self.records.pop_front();
        }
        self.records.push_back(rec);
    }

    fn ingest_hop(&mut self, rec: HopRecord) {
        if self.hops.len() == RING_CAP {
            self.hops.pop_front();
        }
        let arrival = self.next_arrival;
        self.next_arrival += 1;
        self.hops.push_back((arrival, rec));
    }

    /// All hops of one trace, in journey order: by corrected timestamp,
    /// ties broken by arrival at the monitor.
    fn trace_chain(&self, trace_id: u64) -> Vec<HopRecord> {
        let mut hops: Vec<(u64, HopRecord)> = self
            .hops
            .iter()
            .filter(|(_, h)| h.trace_id == trace_id)
            .cloned()
            .collect();
        hops.sort_by_key(|(arrival, h)| (h.timestamp_us, *arrival));
        hops.into_iter().map(|(_, h)| h).collect()
    }

    fn stats(&self, module: u64) -> MonitorStats {
        let mut s = MonitorStats::default();
        for r in &self.records {
            if module != 0 && r.module != module {
                continue;
            }
            s.total += 1;
            match r.kind {
                1 => s.sends += 1,
                2 => s.receives += 1,
                3 => s.circuit_opens += 1,
                4 => s.address_faults += 1,
                5 => s.reconnects += 1,
                _ => {}
            }
            s.last_timestamp_us = s.last_timestamp_us.max(r.timestamp_us);
        }
        s
    }
}

/// Aggregated monitor counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct MonitorStats {
    pub total: u64,
    pub sends: u64,
    pub receives: u64,
    pub circuit_opens: u64,
    pub address_faults: u64,
    pub reconnects: u64,
    pub last_timestamp_us: i64,
}

/// The running monitor module.
#[derive(Debug)]
pub struct MonitorService {
    host: ServiceHost,
    state: Arc<Mutex<MonState>>,
}

impl MonitorService {
    /// Spawns the monitor on `machine`.
    ///
    /// # Errors
    ///
    /// Binding/registration failures.
    pub fn spawn(testbed: &Testbed, machine: MachineId) -> Result<MonitorService> {
        let state = Arc::new(Mutex::new(MonState::default()));
        let st = Arc::clone(&state);
        let handler: Handler = Box::new(move |commod, msg| {
            if msg.is::<MonitorRecord>() {
                if let Ok(rec) = msg.decode::<MonitorRecord>() {
                    st.lock().ingest(rec);
                }
            } else if msg.is::<HopRecord>() {
                if let Ok(rec) = msg.decode::<HopRecord>() {
                    st.lock().ingest_hop(rec);
                }
            } else if msg.is::<TraceQuery>() {
                let Ok(q) = msg.decode::<TraceQuery>() else {
                    return;
                };
                let hops = st.lock().trace_chain(q.trace_id);
                let _ = commod.reply(&msg, &TraceReply { hops });
            } else if msg.is::<ObsCollect>() {
                let Ok(q) = msg.decode::<ObsCollect>() else {
                    return;
                };
                // Cluster-wide snapshot fan-out: the monitor asks every
                // target for its point-in-time report over the same NTCS
                // circuits it observes. An unreachable target becomes an
                // error entry rather than sinking the whole collection.
                let mut docs = Vec::with_capacity(q.targets.len());
                for &raw in &q.targets {
                    let target = UAdd::from_raw(raw);
                    match commod.query_snapshot(target, q.max_events, Some(Duration::from_secs(2)))
                    {
                        Ok(reply) => docs.push(reply.json),
                        Err(e) => docs.push(format!(
                            "{{\"module\":\"{target}\",\"error\":\"{}\"}}",
                            json_escape(&e.to_string())
                        )),
                    }
                }
                let _ = commod.reply(
                    &msg,
                    &ObsCollectReply {
                        json: cluster_snapshot_json(docs),
                    },
                );
            } else if msg.is::<MonitorQuery>() {
                let Ok(q) = msg.decode::<MonitorQuery>() else {
                    return;
                };
                let s = st.lock().stats(q.module);
                let _ = commod.reply(
                    &msg,
                    &MonitorReply {
                        total: s.total,
                        sends: s.sends,
                        receives: s.receives,
                        circuit_opens: s.circuit_opens,
                        address_faults: s.address_faults,
                        reconnects: s.reconnects,
                        last_timestamp_us: s.last_timestamp_us,
                    },
                );
            }
        });
        let host = ServiceHost::spawn(testbed, machine, MONITOR_NAME, handler)?;
        Ok(MonitorService { host, state })
    }

    /// The monitor's UAdd.
    #[must_use]
    pub fn uadd(&self) -> UAdd {
        self.host.uadd()
    }

    /// Local (in-process) view of the aggregates, for tests and experiment
    /// harnesses.
    #[must_use]
    pub fn stats(&self, module_filter: u64) -> MonitorStats {
        self.state.lock().stats(module_filter)
    }

    /// Local (in-process) view of one trace's reassembled journey: every
    /// [`HopRecord`] cast under `trace_id`, in hop order (corrected
    /// timestamp, arrival-index tiebreak).
    #[must_use]
    pub fn trace_chain(&self, trace_id: u64) -> Vec<HopRecord> {
        self.state.lock().trace_chain(trace_id)
    }

    /// Total hop records currently retained.
    #[must_use]
    pub fn hop_count(&self) -> usize {
        self.state.lock().hops.len()
    }

    /// Remote query through the NTCS (what a real operator console does).
    ///
    /// # Errors
    ///
    /// Transport failures or timeout.
    pub fn query(commod: &ComMod, monitor: UAdd, module_filter: u64) -> Result<MonitorStats> {
        let reply = commod.send_receive(
            monitor,
            &MonitorQuery {
                module: module_filter,
            },
            Some(Duration::from_secs(5)),
        )?;
        let rep: MonitorReply = reply.decode()?;
        Ok(MonitorStats {
            total: rep.total,
            sends: rep.sends,
            receives: rep.receives,
            circuit_opens: rep.circuit_opens,
            address_faults: rep.address_faults,
            reconnects: rep.reconnects,
            last_timestamp_us: rep.last_timestamp_us,
        })
    }

    /// Remote trace query through the NTCS: asks the monitor at `monitor`
    /// for the reassembled journey of `trace_id`.
    ///
    /// # Errors
    ///
    /// Transport failures or timeout.
    pub fn query_trace(commod: &ComMod, monitor: UAdd, trace_id: u64) -> Result<Vec<HopRecord>> {
        let reply = commod.send_receive(
            monitor,
            &TraceQuery { trace_id },
            Some(Duration::from_secs(5)),
        )?;
        let rep: TraceReply = reply.decode()?;
        Ok(rep.hops)
    }

    /// Remote cluster-snapshot query: asks the monitor at `monitor` to
    /// collect a point-in-time flight-recorder snapshot from every module
    /// in `targets` (each queried over the wire with [`ntcs::ObsQuery`])
    /// and aggregate them into one JSON document. Unreachable targets
    /// appear as error entries in the document instead of failing the
    /// collection.
    ///
    /// # Errors
    ///
    /// Transport failures or timeout of the collection round itself.
    pub fn query_obs(
        commod: &ComMod,
        monitor: UAdd,
        targets: &[UAdd],
        max_events: u32,
    ) -> Result<String> {
        let reply = commod.send_receive(
            monitor,
            &ObsCollect {
                targets: targets.iter().map(|u| u.raw()).collect(),
                max_events,
            },
            // The monitor spends up to 2 s per unreachable target.
            Some(Duration::from_secs(3 + 2 * targets.len() as u64)),
        )?;
        let rep: ObsCollectReply = reply.decode()?;
        Ok(rep.json)
    }

    /// Stops the monitor.
    pub fn stop(self) {
        self.host.stop();
    }
}
