//! The distributed file service.
//!
//! §1.2 lists the DRTS services: "distributed process management, **file
//! service**, time service, and monitoring." This module is the file
//! service: a pathname-addressed store served by an ordinary NTCS module,
//! so files are reachable from any machine and any network by logical name
//! — and, being a hosted service, the store *relocates with its module*
//! when the testbed is reconfigured.
//!
//! The backing store is in-memory (the simulated machines have no disks);
//! the protocol and placement behaviour are what the reproduction needs.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use ntcs::{ComMod, MachineId, NtcsError, Result, Testbed, UAdd};
use ntcs_wire::ntcs_message;
use ntcs_wire::pack::Blob;
use parking_lot::Mutex;

use crate::host::{Handler, ServiceHost};

/// The registered name of the file service.
pub const FILE_SERVICE_NAME: &str = "file-service";

ntcs_message! {
    /// Write (or append to) a file.
    pub struct FsWrite: 130 {
        /// Pathname (flat namespace with `/` conventions).
        pub path: String,
        /// Contents.
        pub data: Blob,
        /// Append instead of replace.
        pub append: bool,
    }

    /// Read a file.
    pub struct FsRead: 131 {
        /// Pathname.
        pub path: String,
    }

    /// Read reply.
    pub struct FsData: 132 {
        /// Whether the file exists.
        pub found: bool,
        /// Contents (empty if not found).
        pub data: Blob,
    }

    /// List files under a prefix.
    pub struct FsList: 133 {
        /// Pathname prefix ("" = everything).
        pub prefix: String,
    }

    /// Listing reply.
    pub struct FsListing: 134 {
        /// Matching pathnames, sorted.
        pub paths: Vec<String>,
        /// Sizes, aligned with `paths`.
        pub sizes: Vec<u32>,
    }

    /// Delete a file.
    pub struct FsDelete: 135 {
        /// Pathname.
        pub path: String,
    }

    /// Generic file-service acknowledgement.
    pub struct FsAck: 136 {
        /// Whether the operation succeeded.
        pub ok: bool,
        /// Failure detail ("" on success).
        pub detail: String,
    }
}

type Store = Arc<Mutex<BTreeMap<String, Vec<u8>>>>;

/// The running file-service module.
#[derive(Debug)]
pub struct FileService {
    host: ServiceHost,
    store: Store,
}

impl FileService {
    /// Spawns the file service on `machine`.
    ///
    /// # Errors
    ///
    /// Binding/registration failures.
    pub fn spawn(testbed: &Testbed, machine: MachineId) -> Result<FileService> {
        let store: Store = Arc::new(Mutex::new(BTreeMap::new()));
        let st = Arc::clone(&store);
        let handler: Handler = Box::new(move |commod, msg| {
            if msg.is::<FsWrite>() {
                let Ok(req) = msg.decode::<FsWrite>() else {
                    return;
                };
                let reply = if req.path.is_empty() {
                    FsAck {
                        ok: false,
                        detail: "empty pathname".into(),
                    }
                } else {
                    let mut s = st.lock();
                    if req.append {
                        s.entry(req.path)
                            .or_default()
                            .extend_from_slice(&req.data.0);
                    } else {
                        s.insert(req.path, req.data.0);
                    }
                    FsAck {
                        ok: true,
                        detail: String::new(),
                    }
                };
                let _ = commod.reply(&msg, &reply);
            } else if msg.is::<FsRead>() {
                let Ok(req) = msg.decode::<FsRead>() else {
                    return;
                };
                let s = st.lock();
                let reply = match s.get(&req.path) {
                    Some(data) => FsData {
                        found: true,
                        data: Blob(data.clone()),
                    },
                    None => FsData {
                        found: false,
                        data: Blob(Vec::new()),
                    },
                };
                drop(s);
                let _ = commod.reply(&msg, &reply);
            } else if msg.is::<FsList>() {
                let Ok(req) = msg.decode::<FsList>() else {
                    return;
                };
                let s = st.lock();
                let mut paths = Vec::new();
                let mut sizes = Vec::new();
                for (p, d) in s.range(req.prefix.clone()..) {
                    if !p.starts_with(&req.prefix) {
                        break;
                    }
                    paths.push(p.clone());
                    sizes.push(d.len() as u32);
                }
                drop(s);
                let _ = commod.reply(&msg, &FsListing { paths, sizes });
            } else if msg.is::<FsDelete>() {
                let Ok(req) = msg.decode::<FsDelete>() else {
                    return;
                };
                let existed = st.lock().remove(&req.path).is_some();
                let _ = commod.reply(
                    &msg,
                    &FsAck {
                        ok: existed,
                        detail: if existed {
                            String::new()
                        } else {
                            format!("no such file {:?}", req.path)
                        },
                    },
                );
            }
        });
        let host = ServiceHost::spawn(testbed, machine, FILE_SERVICE_NAME, handler)?;
        Ok(FileService { host, store })
    }

    /// The service's current UAdd.
    #[must_use]
    pub fn uadd(&self) -> UAdd {
        self.host.uadd()
    }

    /// The underlying host (relocation — the store moves with the module).
    #[must_use]
    pub fn host(&self) -> &ServiceHost {
        &self.host
    }

    /// Number of files stored (test hook).
    #[must_use]
    pub fn file_count(&self) -> usize {
        self.store.lock().len()
    }

    /// Stops the service.
    pub fn stop(self) {
        self.host.stop();
    }
}

const T: Option<Duration> = Some(Duration::from_secs(10));

/// Writes a file through the service.
///
/// # Errors
///
/// Transport failures, or a negative ack (as [`NtcsError::InvalidArgument`]).
pub fn fs_write(commod: &ComMod, fs: UAdd, path: &str, data: &[u8]) -> Result<()> {
    let reply = commod.send_receive(
        fs,
        &FsWrite {
            path: path.to_owned(),
            data: Blob(data.to_vec()),
            append: false,
        },
        T,
    )?;
    let ack: FsAck = reply.decode()?;
    if ack.ok {
        Ok(())
    } else {
        Err(NtcsError::InvalidArgument(ack.detail))
    }
}

/// Appends to a file through the service.
///
/// # Errors
///
/// As for [`fs_write`].
pub fn fs_append(commod: &ComMod, fs: UAdd, path: &str, data: &[u8]) -> Result<()> {
    let reply = commod.send_receive(
        fs,
        &FsWrite {
            path: path.to_owned(),
            data: Blob(data.to_vec()),
            append: true,
        },
        T,
    )?;
    let ack: FsAck = reply.decode()?;
    if ack.ok {
        Ok(())
    } else {
        Err(NtcsError::InvalidArgument(ack.detail))
    }
}

/// Reads a file through the service.
///
/// # Errors
///
/// Transport failures, or [`NtcsError::NameNotFound`] for a missing file.
pub fn fs_read(commod: &ComMod, fs: UAdd, path: &str) -> Result<Vec<u8>> {
    let reply = commod.send_receive(
        fs,
        &FsRead {
            path: path.to_owned(),
        },
        T,
    )?;
    let data: FsData = reply.decode()?;
    if data.found {
        Ok(data.data.0)
    } else {
        Err(NtcsError::NameNotFound(format!("file {path:?}")))
    }
}

/// Lists files under a prefix.
///
/// # Errors
///
/// Transport failures.
pub fn fs_list(commod: &ComMod, fs: UAdd, prefix: &str) -> Result<Vec<(String, u32)>> {
    let reply = commod.send_receive(
        fs,
        &FsList {
            prefix: prefix.to_owned(),
        },
        T,
    )?;
    let listing: FsListing = reply.decode()?;
    Ok(listing.paths.into_iter().zip(listing.sizes).collect())
}

/// Deletes a file.
///
/// # Errors
///
/// Transport failures, or [`NtcsError::NameNotFound`] for a missing file.
pub fn fs_delete(commod: &ComMod, fs: UAdd, path: &str) -> Result<()> {
    let reply = commod.send_receive(
        fs,
        &FsDelete {
            path: path.to_owned(),
        },
        T,
    )?;
    let ack: FsAck = reply.decode()?;
    if ack.ok {
        Ok(())
    } else {
        Err(NtcsError::NameNotFound(ack.detail))
    }
}
