//! Distributed run-time support (DRTS) services, built **on top of** the
//! NTCS (paper §1.2, §1.3).
//!
//! "Software support for any distributed system involves more than simply
//! grafting on a communication mechanism … a second, less obvious issue is
//! the necessary distributed run-time support (DRTS). This includes such
//! services as distributed process management, file service, time service,
//! and monitoring."
//!
//! The URSA project built "a distributed network monitor and precision time
//! corrector … on top of the NTCS. Since the NTCS itself utilizes both of
//! these services, recursive operation in addition to that of the naming
//! service is observed" (§1.3). This crate reproduces that arrangement:
//!
//! * [`TimeService`] — the precision time corrector: a
//!   reference module plus a Cristian-style synchronization exchange that
//!   corrects each machine's skewed [`ntcs::SimClock`].
//! * [`MonitorService`] — the distributed network
//!   monitor: collects send/receive/fault events from every module,
//!   timestamped with corrected clocks, and answers aggregate queries.
//! * [`DrtsRuntime`] — the glue implementing
//!   [`ntcs::DrtsHooks`]: each ComMod call may recurse into the time service
//!   and monitor **through the same ComMod**, with hooks self-disabled
//!   during their own traffic ("time correction and monitoring are disabled
//!   here, to avoid the obvious infinite recursion", §6.1).
//! * [`ServiceHost`] + process control — distributed
//!   process management: hosted service loops that can be relocated across
//!   machines on command.
//! * [`FileService`] — the distributed file service:
//!   a pathname-addressed store reachable by logical name from any machine,
//!   relocating with its module.
//! * [`ErrorLogService`] — the distributed error logger
//!   §6.3 wishes for ("a running table of errors could be maintained and
//!   monitored").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod errlog;
pub mod files;
pub mod host;
pub mod monitor;
pub mod protocol;
pub mod runtime;
pub mod time;

pub use errlog::{log_error, ErrorLogService};
pub use files::{fs_append, fs_delete, fs_list, fs_read, fs_write, FileService};
pub use host::{ProcessController, ServiceHost};
pub use monitor::{MonitorService, MonitorStats};
pub use runtime::DrtsRuntime;
pub use time::{SyncStats, TimeService};

#[cfg(test)]
mod tests;
