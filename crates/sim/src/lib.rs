//! Deterministic simulation runtime for the NTCS testbed.
//!
//! The paper's testbed (§6) was driven by hand: boot the room, pull a
//! cable, watch the recovery. This crate turns that into a machine-checked
//! discipline, borrowing two ideas from later systems practice:
//!
//! * **FoundationDB-style seeded simulation** — one root seed derives every
//!   random decision ([`SimRng`]), the deployment is a kill hierarchy of
//!   DataCenter → Machine → Process → Module ([`Topology`],
//!   [`ProcessRegistry`]) where any level can die mid-run, and a failing
//!   seed *is* the repro recipe: replay it and the run's [`EventLog`] is
//!   byte-identical.
//! * **Theseus/MINIX-style fault matrices** — a grid of injected fault ×
//!   layer cells ([`matrix`]), each asserting a typed verdict: the system
//!   **recovered**, the message was **dead-lettered**, or the call
//!   **cleanly errored**. A cell that hangs is a failure by definition;
//!   every cell runs under a wall-clock watchdog.
//!
//! The [`mod@sweep`] module runs chaos scenarios across hundreds of seeds and
//! prints the failing ones, so CI explores schedule space instead of
//! re-running three hand-picked seeds forever.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod matrix;
pub mod rng;
pub mod runner;
pub mod sweep;
pub mod topology;

pub use event::EventLog;
pub use matrix::{
    cells, expected, run_cell, run_cell_with_options, CellOutcome, Fault, MatrixLayer, Verdict,
};
pub use rng::SimRng;
pub use runner::{FaultInjector, SimConfig, SimHarness, Simulation, Workload};
pub use sweep::{seed_list, seed_list_from, sweep, SeedFailure, SweepReport, CLASSIC_SEEDS};
pub use topology::{DcId, ProcessHandle, ProcessRegistry, Topology};
