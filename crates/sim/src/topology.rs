//! The kill hierarchy: DataCenter → Machine → Process → Module.
//!
//! FoundationDB's simulator arranges its world so that *any* level can be
//! killed and restarted mid-run — a machine, everything in a datacenter, or
//! one process — and fault schedules pick their victims from that tree. We
//! overlay the same hierarchy on the NTCS testbed:
//!
//! * **DataCenter** — a named group of machines. Killing it crashes every
//!   machine in the group; partitioning two datacenters is a split-brain
//!   (group partition) in the [`World`].
//! * **Machine** — a [`World`] machine; kill/restart map to
//!   [`World::crash`]/[`World::revive`].
//! * **Process / Module** — a registered [`ProcessHandle`]: the workload
//!   tells the registry how to kill (shutdown) and restart (re-bind,
//!   re-register) each of its modules, so a fault schedule can bounce any
//!   of them by name without knowing what they are.

use ntcs::{MachineId, World};
use ntcs_addr::{NtcsError, Result};

/// Index of a datacenter within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DcId(pub usize);

#[derive(Debug)]
struct DcEntry {
    name: String,
    machines: Vec<MachineId>,
}

/// The DataCenter → Machine levels of the kill hierarchy.
#[derive(Debug, Default)]
pub struct Topology {
    dcs: Vec<DcEntry>,
}

impl Topology {
    /// An empty topology.
    #[must_use]
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a named datacenter.
    pub fn add_datacenter(&mut self, name: &str) -> DcId {
        self.dcs.push(DcEntry {
            name: name.to_string(),
            machines: Vec::new(),
        });
        DcId(self.dcs.len() - 1)
    }

    /// Places a machine in a datacenter.
    pub fn place(&mut self, dc: DcId, machine: MachineId) {
        self.dcs[dc.0].machines.push(machine);
    }

    /// The datacenters, in creation order.
    #[must_use]
    pub fn datacenters(&self) -> Vec<DcId> {
        (0..self.dcs.len()).map(DcId).collect()
    }

    /// A datacenter's name.
    #[must_use]
    pub fn name(&self, dc: DcId) -> &str {
        &self.dcs[dc.0].name
    }

    /// The machines in a datacenter.
    #[must_use]
    pub fn machines_in(&self, dc: DcId) -> &[MachineId] {
        &self.dcs[dc.0].machines
    }

    /// Kills a whole datacenter: every machine in it crashes.
    pub fn kill_datacenter(&self, world: &World, dc: DcId) {
        for &m in &self.dcs[dc.0].machines {
            world.crash(m);
        }
    }

    /// Restarts a datacenter's machines (processes on them must be
    /// restarted separately — a revived machine comes back empty, exactly
    /// like the paper's testbed after a reboot).
    pub fn restart_datacenter(&self, world: &World, dc: DcId) {
        for &m in &self.dcs[dc.0].machines {
            world.revive(m);
        }
    }

    /// Split-brain between two datacenters: every cross-pair partitioned,
    /// intra-datacenter traffic untouched.
    pub fn partition_datacenters(&self, world: &World, a: DcId, b: DcId) {
        world.set_partition_groups(&[&self.dcs[a.0].machines, &self.dcs[b.0].machines]);
    }
}

/// One restartable process (a bound module, gateway, or service) in the
/// Process/Module levels of the kill hierarchy.
pub struct ProcessHandle {
    /// Unique name a fault schedule selects victims by.
    pub name: String,
    /// The machine the process runs on.
    pub machine: MachineId,
    alive: bool,
    kill: Box<dyn FnMut() + Send>,
    restart: Box<dyn FnMut() -> Result<()> + Send>,
}

impl std::fmt::Debug for ProcessHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessHandle")
            .field("name", &self.name)
            .field("machine", &self.machine)
            .field("alive", &self.alive)
            .finish()
    }
}

/// Registry of the processes a workload has brought up, so a fault
/// injector can kill and restart them by name.
#[derive(Debug, Default)]
pub struct ProcessRegistry {
    procs: Vec<ProcessHandle>,
}

impl ProcessRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        ProcessRegistry::default()
    }

    /// Registers a process with its kill and restart actions.
    pub fn register(
        &mut self,
        name: &str,
        machine: MachineId,
        kill: impl FnMut() + Send + 'static,
        restart: impl FnMut() -> Result<()> + Send + 'static,
    ) {
        self.procs.push(ProcessHandle {
            name: name.to_string(),
            machine,
            alive: true,
            kill: Box::new(kill),
            restart: Box::new(restart),
        });
    }

    /// Names of all registered processes, in registration order.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.procs.iter().map(|p| p.name.clone()).collect()
    }

    /// Whether the named process is currently alive.
    #[must_use]
    pub fn is_alive(&self, name: &str) -> bool {
        self.procs.iter().any(|p| p.name == name && p.alive)
    }

    fn find(&mut self, name: &str) -> Result<&mut ProcessHandle> {
        self.procs
            .iter_mut()
            .find(|p| p.name == name)
            .ok_or_else(|| NtcsError::InvalidArgument(format!("unknown process {name}")))
    }

    /// Kills the named process (idempotent).
    ///
    /// # Errors
    ///
    /// [`NtcsError::InvalidArgument`] for an unknown name.
    pub fn kill(&mut self, name: &str) -> Result<()> {
        let p = self.find(name)?;
        if p.alive {
            (p.kill)();
            p.alive = false;
        }
        Ok(())
    }

    /// Restarts the named process (no-op when alive).
    ///
    /// # Errors
    ///
    /// [`NtcsError::InvalidArgument`] for an unknown name, or whatever the
    /// restart action fails with.
    pub fn restart(&mut self, name: &str) -> Result<()> {
        let p = self.find(name)?;
        if !p.alive {
            (p.restart)()?;
            p.alive = true;
        }
        Ok(())
    }

    /// Marks every process on `machine` dead without running kill actions
    /// — the bookkeeping for a machine-level crash, which already severed
    /// everything underneath them.
    pub fn machine_crashed(&mut self, machine: MachineId) {
        for p in &mut self.procs {
            if p.machine == machine {
                p.alive = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    #[test]
    fn registry_kill_restart_roundtrip() {
        let kills = Arc::new(AtomicU32::new(0));
        let restarts = Arc::new(AtomicU32::new(0));
        let mut reg = ProcessRegistry::new();
        let (k, r) = (Arc::clone(&kills), Arc::clone(&restarts));
        reg.register(
            "svc",
            MachineId(1),
            move || {
                k.fetch_add(1, Ordering::SeqCst);
            },
            move || {
                r.fetch_add(1, Ordering::SeqCst);
                Ok(())
            },
        );
        assert!(reg.is_alive("svc"));
        reg.kill("svc").unwrap();
        reg.kill("svc").unwrap(); // idempotent
        assert!(!reg.is_alive("svc"));
        assert_eq!(kills.load(Ordering::SeqCst), 1);
        reg.restart("svc").unwrap();
        assert!(reg.is_alive("svc"));
        assert_eq!(restarts.load(Ordering::SeqCst), 1);
        assert!(reg.kill("ghost").is_err());
    }

    #[test]
    fn machine_crash_marks_processes_dead() {
        let mut reg = ProcessRegistry::new();
        reg.register("a", MachineId(1), || {}, || Ok(()));
        reg.register("b", MachineId(2), || {}, || Ok(()));
        reg.machine_crashed(MachineId(1));
        assert!(!reg.is_alive("a"));
        assert!(reg.is_alive("b"));
    }

    #[test]
    fn topology_groups_machines() {
        let mut t = Topology::new();
        let east = t.add_datacenter("east");
        let west = t.add_datacenter("west");
        t.place(east, MachineId(0));
        t.place(east, MachineId(1));
        t.place(west, MachineId(2));
        assert_eq!(t.datacenters().len(), 2);
        assert_eq!(t.name(east), "east");
        assert_eq!(t.machines_in(east), &[MachineId(0), MachineId(1)]);
        assert_eq!(t.machines_in(west), &[MachineId(2)]);
    }
}
