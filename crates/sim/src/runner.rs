//! The deterministic step driver.
//!
//! A [`Simulation`] composes one [`Workload`] with one [`FaultInjector`]
//! over a virtual-time [`Testbed`] and runs a fixed number of steps. Each
//! step is: *inject faults → run workload quantum → settle → advance
//! virtual time*. Everything either party records lands in the
//! [`EventLog`]; with all randomness drawn from forks of the run seed and
//! all fault primitives deterministic (armed counters, partitions, kills —
//! never probabilistic rolls), two runs of the same seed produce
//! byte-identical logs.
//!
//! ## The determinism model
//!
//! Virtual time governs what the system *records and decides*: hop-record
//! timestamps, breaker trip/half-open timelines, DRTS staleness. It only
//! advances here, between steps, so every timestamp is a pure function of
//! the schedule. Real time still governs thread *blocking* — a parked
//! thread cannot advance a clock nobody reads — which is why each step
//! ends with a short wall-clock settle: in-flight frames of the finished
//! step drain before the clock moves, so their timestamps land in the
//! step that caused them. Event logs must therefore record only
//! deterministic facts (verdicts, tallies, virtual times), never wall
//! durations or retry counts; [`EventLog`] documents the contract.

use std::sync::Arc;
use std::time::Duration;

use ntcs::{Testbed, TestbedBuilder};
use ntcs_addr::Result;
use ntcs_ipcs::VirtualTime;

use crate::event::EventLog;
use crate::topology::{ProcessRegistry, Topology};

/// The context both the workload and the fault injector act through.
pub struct SimHarness {
    testbed: Testbed,
    topo: Topology,
    procs: ProcessRegistry,
    vt: Arc<VirtualTime>,
    log: EventLog,
    step: u64,
}

impl SimHarness {
    /// Wraps a started virtual-time testbed. Panics if the testbed's world
    /// is not virtual — a wall-clock world cannot replay.
    #[must_use]
    pub fn new(testbed: Testbed, topo: Topology) -> Self {
        let vt = testbed
            .world()
            .virtual_time()
            .expect("SimHarness requires a virtual-time world (TestbedBuilder::new_virtual)");
        SimHarness {
            testbed,
            topo,
            procs: ProcessRegistry::new(),
            vt,
            log: EventLog::new(),
            step: 0,
        }
    }

    /// The running testbed.
    #[must_use]
    pub fn testbed(&self) -> &Testbed {
        &self.testbed
    }

    /// The world (fault-injection knobs).
    #[must_use]
    pub fn world(&self) -> &ntcs::World {
        self.testbed.world()
    }

    /// The DataCenter/Machine hierarchy.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The Process/Module registry.
    pub fn processes(&mut self) -> &mut ProcessRegistry {
        &mut self.procs
    }

    /// Current virtual time, µs.
    #[must_use]
    pub fn now_us(&self) -> i64 {
        self.vt.now_us()
    }

    /// Records a deterministic event at the current (step, virtual time).
    pub fn record(&mut self, kind: &str, detail: &str) {
        let (step, t) = (self.step, self.now_us());
        self.log.record(step, t, kind, detail);
    }

    /// The log so far.
    #[must_use]
    pub fn log(&self) -> &EventLog {
        &self.log
    }
}

/// A fault schedule, decoupled from what the application is doing. Its
/// randomness must come only from the [`crate::SimRng`] it was built with.
pub trait FaultInjector {
    /// Injector name (for logs and sweep reports).
    fn name(&self) -> &str;
    /// Called at the top of each step, before the workload runs. Faults
    /// installed here are visible to the whole quantum.
    fn inject(&mut self, h: &mut SimHarness, step: u64);
    /// Called once after the last step: heal every standing fault so the
    /// workload's final verification can assert recovery.
    fn heal(&mut self, h: &mut SimHarness);
}

/// An application driving traffic through the testbed. Its randomness must
/// come only from the [`crate::SimRng`] it was built with, and anything it
/// records in the log must be deterministic (see module docs).
pub trait Workload {
    /// Workload name (for logs and sweep reports).
    fn name(&self) -> &str;
    /// Brings up modules/processes; register restartables in
    /// [`SimHarness::processes`].
    ///
    /// # Errors
    ///
    /// Any setup failure aborts the run.
    fn setup(&mut self, h: &mut SimHarness) -> Result<()>;
    /// One quantum of application work. Blocking calls are fine; the step
    /// ends when this returns.
    ///
    /// # Errors
    ///
    /// A workload error aborts the run (assertion failures should panic).
    fn step(&mut self, h: &mut SimHarness, step: u64) -> Result<()>;
    /// Final verification after faults heal; record verdicts in the log.
    ///
    /// # Errors
    ///
    /// A verification failure fails the run.
    fn verify(&mut self, h: &mut SimHarness) -> Result<()>;
}

/// Run parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The root seed: the complete repro recipe.
    pub seed: u64,
    /// Number of workload steps.
    pub steps: u64,
    /// Virtual time advanced after each step, µs.
    pub quantum_us: i64,
    /// Wall-clock settle after each step, letting the finished step's
    /// in-flight frames drain before virtual time moves.
    pub settle: Duration,
    /// Extra settle quanta after healing, before final verification.
    pub heal_steps: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            steps: 16,
            quantum_us: 200_000,
            settle: Duration::from_millis(5),
            heal_steps: 2,
        }
    }
}

impl SimConfig {
    /// A default config at `seed`.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        SimConfig {
            seed,
            ..SimConfig::default()
        }
    }
}

/// One composed deterministic run.
pub struct Simulation {
    config: SimConfig,
}

impl Simulation {
    /// A simulation with the given parameters.
    #[must_use]
    pub fn new(config: SimConfig) -> Self {
        Simulation { config }
    }

    /// A virtual-time testbed builder — the starting point for workload
    /// deployments (re-exported for convenience).
    #[must_use]
    pub fn builder() -> TestbedBuilder {
        TestbedBuilder::new_virtual()
    }

    /// Drives `workload` under `faults` and returns the event log.
    ///
    /// # Errors
    ///
    /// Whatever setup, a step, or verification fails with.
    pub fn run(
        &self,
        harness: &mut SimHarness,
        workload: &mut dyn Workload,
        faults: &mut dyn FaultInjector,
    ) -> Result<EventLog> {
        harness.record(
            "run",
            &format!(
                "seed={:#x} workload={} faults={} steps={}",
                self.config.seed,
                workload.name(),
                faults.name(),
                self.config.steps
            ),
        );
        workload.setup(harness)?;
        std::thread::sleep(self.config.settle);
        for step in 0..self.config.steps {
            harness.step = step;
            faults.inject(harness, step);
            workload.step(harness, step)?;
            std::thread::sleep(self.config.settle);
            harness.vt.advance_us(self.config.quantum_us);
        }
        harness.step = self.config.steps;
        faults.heal(harness);
        for _ in 0..self.config.heal_steps {
            std::thread::sleep(self.config.settle);
            harness.vt.advance_us(self.config.quantum_us);
        }
        workload.verify(harness)?;
        Ok(harness.log().clone())
    }
}
