//! The fault × layer matrix: every injected channel fault, at every layer
//! it can strike, asserts one of three typed verdicts — the system
//! **recovered**, the message was **dead-lettered**, or the call **cleanly
//! errored** with a typed error. A cell that hangs is a bug by definition:
//! each cell body runs on a watchdog thread with a wall-clock budget, and
//! exceeding the budget is the fourth (never-acceptable) verdict,
//! [`Verdict::Hung`].
//!
//! Cells are small, self-contained deployments (a LAN pair, a two-network
//! gateway chain) driven on the real clock — the matrix checks *liveness
//! and typing* of recovery, not byte-identical replay (that is the
//! [`crate::runner`]'s job). A `seed` parameter varies fault intensity and
//! pacing so sweeps explore the schedule space.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use ntcs::{
    dump_snapshot, ntcs_message, ComMod, FlowSettings, MachineId, MachineType, MetricsRegistry,
    NetKind, NetworkId, NtcsError, Result, Testbed, UAdd, World,
};
use ntcs_naming::cache::CacheProbe;
use ntcs_naming::protocol::NS_INVALIDATE_TYPE;
use ntcs_naming::ShardMap;
use parking_lot::Mutex;

use crate::rng::SimRng;

ntcs_message! {
    /// The matrix's probe message.
    pub struct Probe: 7100 {
        /// Sequence number (delivery is tallied per `n`).
        pub n: u32,
        /// Padding so flow-control cells can exhaust byte windows.
        pub pad: String,
    }
}

/// A fault the matrix knows how to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// The LCM's circuit state for a peer is corrupted out from under it
    /// (the underlying virtual circuit is force-closed).
    CorruptCircuit,
    /// The receiver stops draining its inbox entirely.
    WedgedInbox,
    /// A send's data frame is dropped after the circuit is up — the send
    /// half-completed on the wire.
    HalfCompletedSend,
    /// Control frames (acks, credit grants) and data are duplicated.
    DupControlFrames,
    /// Adjacent frames are reordered on the wire.
    ReorderControlFrames,
    /// The receiver's credit window is exhausted and never replenished.
    StuckCreditWindow,
    /// The machine hosting the splicing gateway crashes mid-conversation.
    CrashDuringSplice,
    /// A Name-Service shard's primary crashes while clients are mid-lookup;
    /// resolution must fail over to the shard's replica.
    ShardReplicaCrash,
    /// The lease-invalidation push for a relocated module never reaches the
    /// client; the cache's lease TTL must bound the staleness window.
    DroppedInvalidation,
    /// A client's lookup loop races the destination's relocation.
    LookupRacesRelocation,
    /// One shard group is partitioned away: its names must error typed (the
    /// hash routing leaves no second authority to diverge), the others must
    /// keep resolving.
    ShardSplitBrain,
    /// A reliable send races the relocation that forces its circuit off the
    /// co-location SHM ring onto the wire (substrate handoff
    /// mid-conversation).
    SendRacesHandoff,
    /// A co-located SHM ring fills while its reader is wedged: the producer
    /// must surface a typed stall, never hang.
    WedgedShmRing,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Fault::CorruptCircuit => "corrupt-circuit",
            Fault::WedgedInbox => "wedged-inbox",
            Fault::HalfCompletedSend => "half-completed-send",
            Fault::DupControlFrames => "dup-control-frames",
            Fault::ReorderControlFrames => "reorder-control-frames",
            Fault::StuckCreditWindow => "stuck-credit-window",
            Fault::CrashDuringSplice => "crash-during-splice",
            Fault::ShardReplicaCrash => "shard-replica-crash",
            Fault::DroppedInvalidation => "dropped-invalidation",
            Fault::LookupRacesRelocation => "lookup-races-relocation",
            Fault::ShardSplitBrain => "shard-split-brain",
            Fault::SendRacesHandoff => "send-races-handoff",
            Fault::WedgedShmRing => "wedged-shm-ring",
        };
        f.write_str(s)
    }
}

/// The layer a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MatrixLayer {
    /// The Logical Channel Module's reliable-delivery path on one network.
    Lcm,
    /// The credit-based flow-control subsystem.
    Flow,
    /// A cross-network conversation spliced through a gateway.
    Gateway,
    /// The relocation path: the fault lands while the destination module
    /// is moving machines.
    Relocation,
    /// The sharded Name Service and the leased client-side name cache.
    Naming,
    /// The substrate-selection plane: SHM/UDP/TCP choice, fallback, and
    /// the relocation handoff between substrates.
    Substrate,
}

impl std::fmt::Display for MatrixLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MatrixLayer::Lcm => "lcm",
            MatrixLayer::Flow => "flow",
            MatrixLayer::Gateway => "gateway",
            MatrixLayer::Relocation => "relocation",
            MatrixLayer::Naming => "naming",
            MatrixLayer::Substrate => "substrate",
        };
        f.write_str(s)
    }
}

/// What a cell concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The system absorbed the fault: delivery completed (exactly once).
    Recovered,
    /// The reliable send failed with a typed error after a bounded budget
    /// and the message was dead-lettered; it was delivered at most once.
    DeadLettered,
    /// The call returned the *specific* typed error the fault demands
    /// (e.g. [`NtcsError::FlowStalled`]) without delivering.
    CleanlyErrored,
    /// The cell exceeded its wall-clock budget. Never acceptable.
    Hung,
    /// An invariant was violated (duplicate delivery, wrong error type,
    /// harness failure). Never acceptable.
    Failed,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Verdict::Recovered => "recovered",
            Verdict::DeadLettered => "dead-lettered",
            Verdict::CleanlyErrored => "cleanly-errored",
            Verdict::Hung => "HUNG",
            Verdict::Failed => "FAILED",
        };
        f.write_str(s)
    }
}

/// The outcome of one cell run.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The injected fault.
    pub fault: Fault,
    /// The layer it struck.
    pub layer: MatrixLayer,
    /// The seed the cell ran at.
    pub seed: u64,
    /// The verdict.
    pub verdict: Verdict,
    /// Human-readable detail (error types seen, tallies).
    pub detail: String,
    /// Path of the flight-recorder snapshot dumped for this run, if one
    /// was written (unacceptable verdicts dump automatically; see
    /// [`run_cell_with_options`]).
    pub dump: Option<std::path::PathBuf>,
}

impl CellOutcome {
    /// Whether the verdict is in the cell's acceptable set.
    #[must_use]
    pub fn acceptable(&self) -> bool {
        expected(self.fault, self.layer).contains(&self.verdict)
    }
}

/// Every (fault, layer) cell the matrix covers.
#[must_use]
pub fn cells() -> Vec<(Fault, MatrixLayer)> {
    vec![
        (Fault::CorruptCircuit, MatrixLayer::Lcm),
        (Fault::WedgedInbox, MatrixLayer::Lcm),
        (Fault::HalfCompletedSend, MatrixLayer::Lcm),
        (Fault::DupControlFrames, MatrixLayer::Lcm),
        (Fault::ReorderControlFrames, MatrixLayer::Lcm),
        (Fault::StuckCreditWindow, MatrixLayer::Flow),
        (Fault::DupControlFrames, MatrixLayer::Flow),
        (Fault::CorruptCircuit, MatrixLayer::Gateway),
        (Fault::CrashDuringSplice, MatrixLayer::Gateway),
        (Fault::HalfCompletedSend, MatrixLayer::Relocation),
        (Fault::ShardReplicaCrash, MatrixLayer::Naming),
        (Fault::DroppedInvalidation, MatrixLayer::Naming),
        (Fault::LookupRacesRelocation, MatrixLayer::Naming),
        (Fault::ShardSplitBrain, MatrixLayer::Naming),
        (Fault::SendRacesHandoff, MatrixLayer::Substrate),
        (Fault::WedgedShmRing, MatrixLayer::Substrate),
    ]
}

/// The acceptable verdicts for a cell. [`Verdict::Hung`] and
/// [`Verdict::Failed`] are never acceptable anywhere.
#[must_use]
pub fn expected(fault: Fault, layer: MatrixLayer) -> &'static [Verdict] {
    use MatrixLayer as L;
    use Verdict::{CleanlyErrored, DeadLettered, Recovered};
    match (fault, layer) {
        // §3.5: a corrupted circuit is an address fault; reconnect recovers.
        (Fault::CorruptCircuit, _) => &[Recovered],
        // A wedged inbox either converges through the dedupe re-ack path or
        // dead-letters within the deadline — both typed, neither hangs.
        (Fault::WedgedInbox, L::Lcm) => &[Recovered, DeadLettered],
        // A dropped data frame on a warm circuit is what retransmission is
        // for; during relocation the dead-letter escape hatch is also legal.
        (Fault::HalfCompletedSend, L::Lcm) => &[Recovered],
        (Fault::HalfCompletedSend, L::Relocation) => &[Recovered, DeadLettered],
        // Duplicated / reordered control frames are absorbed by dedupe and
        // idempotent credit grants.
        (Fault::DupControlFrames, _) => &[Recovered],
        (Fault::ReorderControlFrames, _) => &[Recovered],
        // A stuck credit window must surface FlowStalled — not a hang, not
        // a breaker trip.
        (Fault::StuckCreditWindow, _) => &[CleanlyErrored],
        // Losing the gateway mid-splice: recovery through a respawned
        // gateway, or a typed dead-letter if re-routing loses the race.
        (Fault::CrashDuringSplice, _) => &[Recovered, DeadLettered],
        // A crashed shard primary fails lookups over to the replica; if the
        // replication race loses, the typed NS error is the legal escape.
        (Fault::ShardReplicaCrash, _) => &[Recovered, CleanlyErrored],
        // A lost invalidation may serve staleness only inside the lease
        // TTL; past it the re-resolve must recover end to end.
        (Fault::DroppedInvalidation, _) => &[Recovered],
        // A lookup racing a relocation sees the old or the new incarnation
        // — never a third — and converges once the move commits.
        (Fault::LookupRacesRelocation, _) => &[Recovered],
        // A partitioned shard group must surface typed errors for its
        // names: hash routing admits no second authority to diverge to.
        (Fault::ShardSplitBrain, _) => &[CleanlyErrored],
        // A send racing the SHM→TCP handoff: drain-then-switch either lands
        // it exactly once or dead-letters typed within the deadline.
        (Fault::SendRacesHandoff, _) => &[Recovered, DeadLettered],
        // A full ring with a dead reader must surface the typed stall
        // (`FlowStalled`) — never a hang, never silent loss.
        (Fault::WedgedShmRing, _) => &[CleanlyErrored],
        _ => &[Recovered],
    }
}

/// The registry of the most recently deployed cell testbed. Cells are run
/// serially (they are wall-clock sensitive and the matrix tests hold a
/// serialization lock), so one slot suffices; it lets the watchdog dump a
/// flight-recorder snapshot of a cell that hung or failed — the leaked
/// cell thread keeps the testbed, and thus every report source, alive.
static LAST_CELL_REGISTRY: std::sync::Mutex<Option<Arc<MetricsRegistry>>> =
    std::sync::Mutex::new(None);

fn note_cell_registry(testbed: &Testbed) {
    *LAST_CELL_REGISTRY.lock().unwrap() = Some(Arc::clone(testbed.registry()));
}

/// Renders the last deployed cell's cluster snapshot on a helper thread —
/// a hung cell may be wedged inside the very locks a report source needs,
/// so the render itself runs under a watchdog.
fn render_last_cell_snapshot(budget: Duration) -> Option<String> {
    let registry = LAST_CELL_REGISTRY.lock().unwrap().clone()?;
    let (tx, rx) = mpsc::channel();
    thread::Builder::new()
        .name("cell-snapshot-dump".into())
        .spawn(move || {
            let _ = tx.send(registry.render_snapshot_json());
        })
        .ok()?;
    rx.recv_timeout(budget).ok()
}

/// Runs one cell at `seed` under a wall-clock `budget`. The cell body runs
/// on its own thread; if it has not produced a verdict within the budget
/// the outcome is [`Verdict::Hung`] (the thread is leaked — a hung cell is
/// already a failed run). A run whose verdict is not in the cell's
/// acceptable set dumps the deployment's flight-recorder snapshot to
/// `target/obs/` (override with `NTCS_OBS_DIR`).
#[must_use]
pub fn run_cell(fault: Fault, layer: MatrixLayer, seed: u64, budget: Duration) -> CellOutcome {
    run_cell_with_options(fault, layer, seed, budget, false)
}

/// [`run_cell`] with an explicit dump policy: `force_dump` writes the
/// snapshot even for acceptable verdicts (how the acceptance tests inspect
/// what a wedged cell's dump names).
#[must_use]
pub fn run_cell_with_options(
    fault: Fault,
    layer: MatrixLayer,
    seed: u64,
    budget: Duration,
    force_dump: bool,
) -> CellOutcome {
    let (tx, rx) = mpsc::channel();
    let spawned = thread::Builder::new()
        .name(format!("cell-{fault}-{layer}"))
        .spawn(move || {
            let res = catch_unwind(AssertUnwindSafe(|| cell_body(fault, layer, seed)));
            let _ = tx.send(res);
        });
    if spawned.is_err() {
        return CellOutcome {
            fault,
            layer,
            seed,
            verdict: Verdict::Failed,
            detail: "could not spawn cell thread".into(),
            dump: None,
        };
    }
    let (verdict, detail) = match rx.recv_timeout(budget) {
        Ok(Ok((verdict, detail))) => (verdict, detail),
        Ok(Err(panic)) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic".into());
            (Verdict::Failed, format!("panicked: {msg}"))
        }
        Err(_) => (
            Verdict::Hung,
            format!("no verdict within {budget:?} (watchdog fired)"),
        ),
    };
    let mut outcome = CellOutcome {
        fault,
        layer,
        seed,
        verdict,
        detail,
        dump: None,
    };
    if force_dump || !outcome.acceptable() {
        if let Some(json) = render_last_cell_snapshot(Duration::from_secs(2)) {
            outcome.dump = dump_snapshot(&format!("cell-{fault}-{layer}-{seed:#018x}"), &json);
        }
    }
    outcome
}

// ---------------------------------------------------------------------------
// Deployments
// ---------------------------------------------------------------------------

const TYPE_CYCLE: [MachineType; 4] = [
    MachineType::Sun,
    MachineType::Vax,
    MachineType::Apollo,
    MachineType::M68k,
];

fn single_net(n: usize) -> Result<(Testbed, NetworkId, Vec<MachineId>)> {
    let mut tb = Testbed::builder();
    let net = tb.add_network(NetKind::Mbx, "cell-lan");
    let mut machines = Vec::with_capacity(n);
    for i in 0..n {
        machines.push(tb.add_machine(
            TYPE_CYCLE[i % TYPE_CYCLE.len()],
            &format!("m{i}"),
            &[net],
        )?);
    }
    tb.name_server_on(machines[0]);
    let testbed = tb.start()?;
    note_cell_registry(&testbed);
    Ok((testbed, net, machines))
}

struct GatewayChain {
    testbed: Testbed,
    gw_machine: MachineId,
    client_machine: MachineId,
    server_machine: MachineId,
}

fn gateway_chain() -> Result<GatewayChain> {
    let mut tb = Testbed::builder();
    let n0 = tb.add_network(NetKind::Mbx, "net0");
    let n1 = tb.add_network(NetKind::Mbx, "net1");
    let ns_machine = tb.add_machine(MachineType::Sun, "ns-host", &[n0, n1])?;
    let client_machine = tb.add_machine(MachineType::Vax, "edge0", &[n0])?;
    let server_machine = tb.add_machine(MachineType::M68k, "edge1", &[n1])?;
    let gw_machine = tb.add_machine(MachineType::Apollo, "gw-host", &[n0, n1])?;
    tb.name_server_on(ns_machine);
    let testbed = tb.start()?;
    note_cell_registry(&testbed);
    let _gw = testbed.gateway(gw_machine, "cell-gw")?;
    Ok(GatewayChain {
        testbed,
        gw_machine,
        client_machine,
        server_machine,
    })
}

type Tally = Arc<Mutex<HashMap<u32, u32>>>;

/// Drains `server` into a per-`n` tally until `stop` is raised.
fn spawn_pump(server: ComMod, stop: Arc<AtomicBool>) -> (Tally, thread::JoinHandle<()>) {
    let tally: Tally = Arc::new(Mutex::new(HashMap::new()));
    let t = Arc::clone(&tally);
    let handle = thread::spawn(move || {
        while !stop.load(Ordering::Relaxed) {
            if let Ok(inc) = server.receive(Some(Duration::from_millis(25))) {
                if let Ok(p) = inc.decode::<Probe>() {
                    *t.lock().entry(p.n).or_insert(0) += 1;
                }
            }
        }
    });
    (tally, handle)
}

fn probe(n: u32) -> Probe {
    Probe {
        n,
        pad: String::new(),
    }
}

fn count(tally: &Tally, n: u32) -> u32 {
    tally.lock().get(&n).copied().unwrap_or(0)
}

/// Polls until `tally[n] >= 1` or ~2s elapse.
fn await_delivery(tally: &Tally, n: u32) -> u32 {
    let deadline = Instant::now() + Duration::from_secs(2);
    loop {
        let c = count(tally, n);
        if c >= 1 || Instant::now() >= deadline {
            return c;
        }
        thread::sleep(Duration::from_millis(5));
    }
}

struct PairCell {
    testbed: Testbed,
    net: NetworkId,
    client: ComMod,
    dst: UAdd,
    tally: Tally,
    stop: Arc<AtomicBool>,
    pump: Option<thread::JoinHandle<()>>,
}

impl PairCell {
    /// A warmed LAN pair: circuit established, pump draining the sink.
    fn up() -> PairCell {
        let (testbed, net, ms) = single_net(3).expect("cell deployment");
        let server = testbed.module(ms[1], "cell-sink").expect("sink module");
        let client = testbed.commod(ms[2], "cell-src").expect("src commod");
        let dst = client.locate("cell-sink").expect("locate sink");
        let stop = Arc::new(AtomicBool::new(false));
        let (tally, pump) = spawn_pump(server, Arc::clone(&stop));
        client
            .send_reliable(dst, &probe(0), Duration::from_secs(3))
            .expect("warm-up send");
        assert_eq!(await_delivery(&tally, 0), 1, "warm-up not delivered");
        PairCell {
            testbed,
            net,
            client,
            dst,
            tally,
            stop,
            pump: Some(pump),
        }
    }

    fn finish(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(p) = self.pump.take() {
            let _ = p.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Cell bodies
// ---------------------------------------------------------------------------

/// Maps a reliable-send result to (verdict, detail), asserting the
/// exactly-once-or-dead-letter contract against `tally[n]`.
fn reliable_verdict(res: Result<u64>, tally: &Tally, n: u32) -> (Verdict, String) {
    match res {
        Ok(_) => {
            let c = await_delivery(tally, n);
            assert_eq!(c, 1, "send ok but delivered {c} times (exactly-once)");
            (Verdict::Recovered, format!("msg {n} acked, delivered once"))
        }
        Err(e) => {
            // Dead-lettered: give straggler retransmissions a moment, then
            // the at-most-once half of the contract must hold.
            thread::sleep(Duration::from_millis(300));
            let c = count(tally, n);
            assert!(c <= 1, "dead-lettered msg {n} delivered {c} times");
            (
                Verdict::DeadLettered,
                format!("msg {n} failed typed ({e:?}), delivered {c} time(s)"),
            )
        }
    }
}

fn cell_body(fault: Fault, layer: MatrixLayer, seed: u64) -> (Verdict, String) {
    let mut rng = SimRng::new(seed).fork(&format!("cell/{fault}/{layer}"));
    match (fault, layer) {
        (Fault::CorruptCircuit, MatrixLayer::Lcm) => corrupt_circuit_lcm(),
        (Fault::WedgedInbox, MatrixLayer::Lcm) => wedged_inbox_lcm(),
        (Fault::HalfCompletedSend, MatrixLayer::Lcm) => half_completed_send_lcm(&mut rng),
        (Fault::DupControlFrames, MatrixLayer::Lcm) => dup_control_frames_lcm(&mut rng),
        (Fault::ReorderControlFrames, MatrixLayer::Lcm) => reorder_control_frames_lcm(&mut rng),
        (Fault::StuckCreditWindow, MatrixLayer::Flow) => stuck_credit_window_flow(),
        (Fault::DupControlFrames, MatrixLayer::Flow) => dup_control_frames_flow(&mut rng),
        (Fault::CorruptCircuit, MatrixLayer::Gateway) => corrupt_circuit_gateway(),
        (Fault::CrashDuringSplice, MatrixLayer::Gateway) => crash_during_splice_gateway(),
        (Fault::HalfCompletedSend, MatrixLayer::Relocation) => {
            half_completed_send_relocation(&mut rng)
        }
        (Fault::ShardReplicaCrash, MatrixLayer::Naming) => shard_replica_crash_naming(&mut rng),
        (Fault::DroppedInvalidation, MatrixLayer::Naming) => dropped_invalidation_naming(&mut rng),
        (Fault::LookupRacesRelocation, MatrixLayer::Naming) => {
            lookup_races_relocation_naming(&mut rng)
        }
        (Fault::ShardSplitBrain, MatrixLayer::Naming) => shard_split_brain_naming(),
        (Fault::SendRacesHandoff, MatrixLayer::Substrate) => send_races_handoff_substrate(&mut rng),
        (Fault::WedgedShmRing, MatrixLayer::Substrate) => wedged_shm_ring_substrate(&mut rng),
        other => panic!("no cell body for {other:?}"),
    }
}

fn corrupt_circuit_lcm() -> (Verdict, String) {
    let cell = PairCell::up();
    assert!(
        cell.client.chaos_corrupt_circuit(cell.dst),
        "no circuit to corrupt after warm-up"
    );
    let res = cell
        .client
        .send_reliable(cell.dst, &probe(1), Duration::from_secs(3));
    let out = reliable_verdict(res, &cell.tally, 1);
    cell.finish();
    out
}

/// Warms a circuit without a standing pump. The reliable ack only fires on
/// application `recv()`, so the receive must run concurrently with the
/// send — doing them sequentially on one thread deadlocks by design.
fn warm_direct(client: &ComMod, dst: UAdd, server: &ComMod) {
    thread::scope(|s| {
        let rx = s.spawn(|| server.receive(Some(Duration::from_secs(3))));
        client
            .send_reliable(dst, &probe(0), Duration::from_secs(3))
            .expect("warm-up send");
        let inc = rx.join().expect("warm recv thread").expect("warm-up recv");
        assert_eq!(inc.decode::<Probe>().expect("probe").n, 0, "warm-up probe");
    });
}

fn wedged_inbox_lcm() -> (Verdict, String) {
    // No pump: warm the circuit, then the sink stops draining entirely.
    let (testbed, _net, ms) = single_net(3).expect("cell deployment");
    let server = testbed.module(ms[1], "cell-sink").expect("sink module");
    let client = testbed.commod(ms[2], "cell-src").expect("src commod");
    let dst = client.locate("cell-sink").expect("locate sink");
    warm_direct(&client, dst, &server);

    // Inbox now wedged. The send must converge or dead-letter — never hang.
    let res = client.send_reliable(dst, &probe(1), Duration::from_millis(1500));
    let (verdict, why) = match res {
        Ok(_) => (Verdict::Recovered, "acked despite wedged inbox".to_string()),
        Err(
            e @ (NtcsError::DeadlineExceeded | NtcsError::Timeout | NtcsError::CircuitBroken(_)),
        ) => (Verdict::DeadLettered, format!("typed failure: {e:?}")),
        Err(e) => panic!("untyped failure from wedged inbox: {e:?}"),
    };
    // Unwedge and drain: at most one copy may surface.
    let mut seen = 0;
    while let Ok(inc) = server.receive(Some(Duration::from_millis(200))) {
        if inc.decode::<Probe>().map(|p| p.n) == Ok(1) {
            seen += 1;
        }
    }
    assert!(seen <= 1, "wedged msg surfaced {seen} times after drain");
    if verdict == Verdict::Recovered {
        assert_eq!(seen, 1, "acked but never surfaced after drain");
    }
    (verdict, format!("{why}; drained {seen} cop(ies)"))
}

fn half_completed_send_lcm(rng: &mut SimRng) -> (Verdict, String) {
    let cell = PairCell::up();
    let drops = 1 + (rng.next_u64() % 2) as u32;
    cell.testbed
        .world()
        .drop_next_frames(cell.net, drops)
        .expect("arm drop");
    let res = cell
        .client
        .send_reliable(cell.dst, &probe(1), Duration::from_secs(3));
    let (v, d) = reliable_verdict(res, &cell.tally, 1);
    cell.finish();
    (v, format!("{d} (after {drops} dropped frame(s))"))
}

fn dup_control_frames_lcm(rng: &mut SimRng) -> (Verdict, String) {
    let cell = PairCell::up();
    let dups = 2 + (rng.next_u64() % 3) as u32;
    cell.testbed
        .world()
        .dup_next_frames(cell.net, dups)
        .expect("arm dup");
    for n in 1..=3 {
        let res = cell
            .client
            .send_reliable(cell.dst, &probe(n), Duration::from_secs(3));
        let (v, d) = reliable_verdict(res, &cell.tally, n);
        if v != Verdict::Recovered {
            cell.finish();
            return (v, d);
        }
    }
    thread::sleep(Duration::from_millis(200));
    for n in 1..=3 {
        let c = count(&cell.tally, n);
        assert_eq!(c, 1, "msg {n} delivered {c} times under duplication");
    }
    cell.finish();
    (
        Verdict::Recovered,
        format!("3 msgs delivered exactly once under {dups} duplicated frames"),
    )
}

fn reorder_control_frames_lcm(rng: &mut SimRng) -> (Verdict, String) {
    let cell = PairCell::up();
    let swaps = 1 + (rng.next_u64() % 2) as u32;
    cell.testbed
        .world()
        .reorder_next_frames(cell.net, swaps)
        .expect("arm reorder");
    for n in 1..=4 {
        let res = cell
            .client
            .send_reliable(cell.dst, &probe(n), Duration::from_secs(3));
        let (v, d) = reliable_verdict(res, &cell.tally, n);
        if v != Verdict::Recovered {
            cell.finish();
            return (v, d);
        }
    }
    thread::sleep(Duration::from_millis(200));
    for n in 1..=4 {
        let c = count(&cell.tally, n);
        assert_eq!(c, 1, "msg {n} delivered {c} times under reordering");
    }
    cell.finish();
    (
        Verdict::Recovered,
        format!("4 msgs delivered exactly once under {swaps} swapped pair(s)"),
    )
}

fn stuck_credit_window_flow() -> (Verdict, String) {
    let (testbed, _net, ms) = single_net(3).expect("cell deployment");
    testbed.enable_flow_control(
        FlowSettings::enabled(2048, 8).with_stall_timeout(Duration::from_millis(300)),
    );
    let _server = testbed.module(ms[1], "cell-sink").expect("sink module");
    let client = testbed.commod(ms[2], "cell-src").expect("src commod");
    let dst = client.locate("cell-sink").expect("locate sink");
    // The sink never drains, so its window never replenishes. Each send is
    // bounded by the stall timeout; the window must exhaust well before the
    // send budget does.
    let payload = "x".repeat(300);
    for i in 0..64u32 {
        match client.send(
            dst,
            &Probe {
                n: i,
                pad: payload.clone(),
            },
        ) {
            Ok(_) => {}
            Err(NtcsError::FlowStalled(_)) => {
                return (
                    Verdict::CleanlyErrored,
                    format!("FlowStalled surfaced after {i} sends into a stuck window"),
                );
            }
            Err(e) => panic!("stuck window surfaced wrong error type: {e:?}"),
        }
    }
    panic!("64 sends never exhausted a 2 KiB / 8-frame window");
}

fn dup_control_frames_flow(rng: &mut SimRng) -> (Verdict, String) {
    let (testbed, net, ms) = single_net(3).expect("cell deployment");
    testbed.enable_flow_control(
        FlowSettings::enabled(4096, 16).with_stall_timeout(Duration::from_millis(500)),
    );
    let server = testbed.module(ms[1], "cell-sink").expect("sink module");
    let client = testbed.commod(ms[2], "cell-src").expect("src commod");
    let dst = client.locate("cell-sink").expect("locate sink");
    let stop = Arc::new(AtomicBool::new(false));
    let (tally, pump) = spawn_pump(server, Arc::clone(&stop));
    // Duplicate a burst of frames mid-stream: data frames and the credit
    // grants flowing back. Grant accounting must stay sane (no stall, no
    // over-delivery).
    let dups = 3 + (rng.next_u64() % 4) as u32;
    let payload = "y".repeat(200);
    let total = 12u32;
    for n in 1..=total {
        if n == 4 {
            testbed.world().dup_next_frames(net, dups).expect("arm dup");
        }
        client
            .send_reliable(
                dst,
                &Probe {
                    n,
                    pad: payload.clone(),
                },
                Duration::from_secs(3),
            )
            .unwrap_or_else(|e| panic!("send {n} failed under duplicated grants: {e:?}"));
    }
    for n in 1..=total {
        let c = await_delivery(&tally, n);
        assert_eq!(c, 1, "msg {n} delivered {c} times under duplicated grants");
    }
    stop.store(true, Ordering::Relaxed);
    let _ = pump.join();
    (
        Verdict::Recovered,
        format!("{total} flow-controlled msgs exactly-once under {dups} duplicated frames"),
    )
}

fn corrupt_circuit_gateway() -> (Verdict, String) {
    let chain = gateway_chain().expect("cell deployment");
    let server = chain
        .testbed
        .module(chain.server_machine, "cell-sink")
        .expect("sink module");
    let client = chain
        .testbed
        .commod(chain.client_machine, "cell-src")
        .expect("src commod");
    let dst = client.locate("cell-sink").expect("locate sink");
    let stop = Arc::new(AtomicBool::new(false));
    let (tally, pump) = spawn_pump(server, Arc::clone(&stop));
    client
        .send_reliable(dst, &probe(0), Duration::from_secs(4))
        .expect("warm-up through gateway");
    assert_eq!(await_delivery(&tally, 0), 1);
    assert!(
        client.chaos_corrupt_circuit(dst),
        "no spliced circuit to corrupt"
    );
    let res = client.send_reliable(dst, &probe(1), Duration::from_secs(4));
    let out = reliable_verdict(res, &tally, 1);
    stop.store(true, Ordering::Relaxed);
    let _ = pump.join();
    out
}

fn crash_during_splice_gateway() -> (Verdict, String) {
    let chain = gateway_chain().expect("cell deployment");
    let server = chain
        .testbed
        .module(chain.server_machine, "cell-sink")
        .expect("sink module");
    let client = chain
        .testbed
        .commod(chain.client_machine, "cell-src")
        .expect("src commod");
    let dst = client.locate("cell-sink").expect("locate sink");
    let stop = Arc::new(AtomicBool::new(false));
    let (tally, pump) = spawn_pump(server, Arc::clone(&stop));
    client
        .send_reliable(dst, &probe(0), Duration::from_secs(4))
        .expect("warm-up through gateway");
    assert_eq!(await_delivery(&tally, 0), 1);

    // Kill the only gateway mid-conversation: the next send must fail with
    // a typed error within its deadline, never hang.
    chain.testbed.world().crash(chain.gw_machine);
    let mid = client.send_reliable(dst, &probe(1), Duration::from_millis(1500));
    let mid_desc = match mid {
        Ok(_) => "mid-crash send unexpectedly acked".to_string(),
        Err(e) => {
            assert!(
                matches!(
                    e,
                    NtcsError::DeadlineExceeded
                        | NtcsError::Timeout
                        | NtcsError::CircuitBroken(_)
                        | NtcsError::ConnectionClosed
                        | NtcsError::AddressFault(_)
                        | NtcsError::NoRoute { .. }
                ),
                "untyped mid-crash failure: {e:?}"
            );
            format!("mid-crash send failed typed ({e:?})")
        }
    };

    // Revive the machine and respawn a gateway on it; the conversation must
    // re-splice (or dead-letter typed — never hang).
    chain.testbed.world().revive(chain.gw_machine);
    let _gw2 = chain
        .testbed
        .gateway(chain.gw_machine, "cell-gw-reborn")
        .expect("respawn gateway");
    thread::sleep(Duration::from_millis(100));
    let res = client.send_reliable(dst, &probe(2), Duration::from_secs(5));
    let (v, d) = reliable_verdict(res, &tally, 2);
    stop.store(true, Ordering::Relaxed);
    let _ = pump.join();
    (v, format!("{mid_desc}; post-restart: {d}"))
}

fn half_completed_send_relocation(rng: &mut SimRng) -> (Verdict, String) {
    let (testbed, net, ms) = single_net(4).expect("cell deployment");
    let server = testbed.module(ms[1], "cell-sink").expect("sink module");
    let client = testbed.commod(ms[2], "cell-src").expect("src commod");
    let dst = client.locate("cell-sink").expect("locate sink");
    warm_direct(&client, dst, &server);

    // Drop the send's data frame while the destination relocates under it.
    let drops = 1 + (rng.next_u64() % 2) as u32;
    testbed
        .world()
        .drop_next_frames(net, drops)
        .expect("arm drop");
    let pace = Duration::from_millis(2 + rng.next_u64() % 6);
    let sender = thread::spawn(move || {
        let res = client.send_reliable(dst, &probe(7), Duration::from_secs(3));
        (client, res)
    });
    thread::sleep(pace);
    // The armed drop can just as well eat the relocation handshake as the
    // data frame — a typed relocation failure hands the original, still
    // live binding back, and the exactly-once contract must hold either
    // way. Untyped failures are cell failures.
    let relocated = match server.relocate_to(ms[3]) {
        Ok(c) => c,
        Err(e)
            if matches!(
                e.error,
                NtcsError::DeadlineExceeded
                    | NtcsError::Timeout
                    | NtcsError::CircuitBroken(_)
                    | NtcsError::ConnectionClosed
            ) =>
        {
            e.commod
        }
        Err(e) => panic!("untyped relocation failure: {:?}", e.error),
    };
    let stop = Arc::new(AtomicBool::new(false));
    let (tally, pump) = spawn_pump(relocated, Arc::clone(&stop));
    let (_client, res) = sender.join().expect("sender thread");
    let (v, d) = reliable_verdict(res, &tally, 7);
    stop.store(true, Ordering::Relaxed);
    let _ = pump.join();
    (
        v,
        format!("{d} ({drops} dropped frame(s) racing a relocation)"),
    )
}

/// A co-location pair: `host` carries a private SHM network plus a TCP
/// wire shared with `remote`; the Name Server on `host`.
fn colocated_cell() -> Result<(Testbed, MachineId, MachineId)> {
    let mut tb = Testbed::builder();
    let wire = tb.add_network(NetKind::Tcp, "cell-wire");
    let (host, _shm) = tb.add_colocated_machine(MachineType::Sun, "cell-host", &[wire])?;
    let remote = tb.add_machine(MachineType::Vax, "cell-remote", &[wire])?;
    tb.name_server_on(host);
    let testbed = tb.start()?;
    note_cell_registry(&testbed);
    Ok((testbed, host, remote))
}

fn send_races_handoff_substrate(rng: &mut SimRng) -> (Verdict, String) {
    let (testbed, host, remote) = colocated_cell().expect("cell deployment");
    let server = testbed.module(host, "cell-sink").expect("sink module");
    let client = testbed.commod(host, "cell-src").expect("src commod");
    let dst = client.locate("cell-sink").expect("locate sink");
    warm_direct(&client, dst, &server);
    assert!(
        client.metrics().substrate_selects >= 1,
        "warm circuit made no substrate choice"
    );

    // Fire a reliable send while the destination leaves the machine — the
    // circuit must come off the SHM ring onto the wire under it.
    let pace = Duration::from_millis(1 + rng.next_u64() % 8);
    let sender = thread::spawn(move || {
        let res = client.send_reliable(dst, &probe(7), Duration::from_secs(4));
        (client, res)
    });
    thread::sleep(pace);
    let (relocated, moved) = match server.relocate_to(remote) {
        Ok(c) => (c, true),
        Err(e)
            if matches!(
                e.error,
                NtcsError::DeadlineExceeded
                    | NtcsError::Timeout
                    | NtcsError::CircuitBroken(_)
                    | NtcsError::ConnectionClosed
            ) =>
        {
            // Typed relocation failure hands the original, still-live (and
            // still co-located) binding back — no handoff to observe.
            (e.commod, false)
        }
        Err(e) => panic!("untyped relocation failure: {:?}", e.error),
    };
    let stop = Arc::new(AtomicBool::new(false));
    let (tally, pump) = spawn_pump(relocated, Arc::clone(&stop));
    let (client, res) = sender.join().expect("sender thread");
    let (v, d) = reliable_verdict(res, &tally, 7);
    // A follow-up send must converge on the post-move substrate.
    let (v2, d2) = if v == Verdict::Recovered {
        reliable_verdict(
            client.send_reliable(dst, &probe(8), Duration::from_secs(4)),
            &tally,
            8,
        )
    } else {
        (v, "follow-up skipped after dead-letter".to_string())
    };
    let handoffs = client.metrics().substrate_handoffs;
    if moved && v == Verdict::Recovered && v2 == Verdict::Recovered {
        assert!(
            handoffs >= 1,
            "peer left the machine but the circuit never changed substrate"
        );
    }
    stop.store(true, Ordering::Relaxed);
    let _ = pump.join();
    let worst = if v2 == Verdict::Recovered { v } else { v2 };
    (
        worst,
        format!("{d}; {d2} (moved={moved}, substrate handoffs: {handoffs})"),
    )
}

fn wedged_shm_ring_substrate(rng: &mut SimRng) -> (Verdict, String) {
    // Raw IPCS level by design: the LCM's reader thread always drains its
    // channel, so a truly wedged reader can only be staged below it — a
    // ring whose consumer never runs at all.
    let world = World::new();
    let net = world.add_network(NetKind::Shm, "cell-colo");
    let m = world
        .add_machine(MachineType::Sun, "cell-host", &[net])
        .expect("machine");
    let (addr, _listener) = world.create_listener(m, net, "wedged").expect("listener");
    let chan = world.connect(m, &addr).expect("connect");
    // Fill the ring past capacity with nobody draining. The producer must
    // surface the typed stall; the cell watchdog catches a hang.
    let payload = vec![0xA5u8; 16 + (rng.next_u64() % 48) as usize];
    let attempts = ntcs_ipcs::SHM_RING_CAP * 2;
    for i in 0..attempts {
        match chan.send(ntcs_ipcs::Bytes::from(payload.clone())) {
            Ok(()) => {}
            Err(NtcsError::FlowStalled(_)) => {
                return (
                    Verdict::CleanlyErrored,
                    format!("FlowStalled surfaced after {i} sends into a wedged ring"),
                );
            }
            Err(e) => panic!("wedged ring surfaced wrong error type: {e:?}"),
        }
    }
    panic!("{attempts} sends never filled a wedged ring");
}

/// A two-shard Name Service across four machines: shard 0's primary on
/// m0, shard 1's on m1; with `replicas` each shard gets one replica
/// (shard 0's on m2, shard 1's on m3).
fn sharded_net(replicas: bool) -> Result<(Testbed, Vec<MachineId>)> {
    let mut tb = Testbed::builder();
    let net = tb.add_network(NetKind::Mbx, "cell-lan");
    let mut machines = Vec::with_capacity(4);
    for i in 0..4 {
        machines.push(tb.add_machine(
            TYPE_CYCLE[i % TYPE_CYCLE.len()],
            &format!("m{i}"),
            &[net],
        )?);
    }
    tb.name_server_on(machines[0]);
    let s1 = tb.ns_shard_on(machines[1]);
    if replicas {
        tb.shard_replica_on(0, machines[2]);
        tb.shard_replica_on(s1, machines[3]);
    }
    let testbed = tb.start()?;
    note_cell_registry(&testbed);
    Ok((testbed, machines))
}

/// The first `"{stem}-{i}"` that hashes to `shard`.
fn name_on_shard(map: &ShardMap, shard: usize, stem: &str) -> String {
    (0u32..64)
        .map(|i| format!("{stem}-{i}"))
        .find(|n| map.shard_for_name(n) == shard)
        .expect("64 candidate names never hit the shard")
}

/// Whether a resolution error is one the naming layer is allowed to
/// surface while its servers are unreachable.
fn typed_naming_error(e: &NtcsError) -> bool {
    matches!(
        e,
        NtcsError::Timeout
            | NtcsError::DeadlineExceeded
            | NtcsError::NameServerUnreachable
            | NtcsError::ConnectionClosed
            | NtcsError::ConnectRefused(_)
            | NtcsError::CircuitBroken(_)
            | NtcsError::UnknownAddress(_)
            | NtcsError::AddressFault(_)
    )
}

fn shard_replica_crash_naming(rng: &mut SimRng) -> (Verdict, String) {
    let (testbed, ms) = sharded_net(true).expect("cell deployment");
    let map = testbed.shard_map();
    let shard = (rng.next_u64() % 2) as usize;
    let name = name_on_shard(&map, shard, "cell-sink");
    let server = testbed.module(ms[2], &name).expect("sink module");
    let live = server.my_uadd();
    let client = testbed.module(ms[3], "cell-src").expect("src module");
    assert_eq!(client.locate(&name).expect("warm locate"), live);
    thread::sleep(Duration::from_millis(300)); // replication drains

    // A lookup loop is mid-flight when the shard's primary machine dies.
    let stop = Arc::new(AtomicBool::new(false));
    let errs = Arc::new(Mutex::new(Vec::new()));
    let looper = {
        let stop = Arc::clone(&stop);
        let errs = Arc::clone(&errs);
        let client = testbed.module(ms[3], "cell-looker").expect("looker");
        let name = name.clone();
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match client.locate(&name) {
                    Ok(u) => assert_eq!(u, live, "lookup resolved a dead incarnation"),
                    Err(e) => {
                        assert!(typed_naming_error(&e), "untyped mid-crash lookup: {e:?}");
                        errs.lock().push(format!("{e:?}"));
                    }
                }
                thread::sleep(Duration::from_millis(2));
            }
        })
    };
    thread::sleep(Duration::from_millis(5 + rng.next_u64() % 20));
    testbed.world().crash(ms[shard]);

    // Post-crash, resolution must settle on the replica within a bounded
    // budget — or keep failing typed (replication lost the race).
    let deadline = Instant::now() + Duration::from_secs(6);
    let mut last_err = String::new();
    let verdict = loop {
        match client.locate(&name) {
            Ok(u) => {
                assert_eq!(u, live, "failover resolved a dead incarnation");
                break Verdict::Recovered;
            }
            Err(e) => {
                assert!(typed_naming_error(&e), "untyped post-crash lookup: {e:?}");
                last_err = format!("{e:?}");
            }
        }
        if Instant::now() >= deadline {
            break Verdict::CleanlyErrored;
        }
        thread::sleep(Duration::from_millis(50));
    };
    stop.store(true, Ordering::Relaxed);
    let _ = looper.join();
    let mid_errs = errs.lock().len();
    let detail = match verdict {
        Verdict::Recovered => format!(
            "shard {shard} primary crashed; replica answered ({mid_errs} typed mid-crash errors)"
        ),
        _ => format!("failover never settled; last typed error {last_err}"),
    };
    (verdict, detail)
}

fn dropped_invalidation_naming(rng: &mut SimRng) -> (Verdict, String) {
    let (testbed, ms) = sharded_net(false).expect("cell deployment");
    // Seed-varied (but short) lease so the staleness window fits a cell.
    let ttl = Duration::from_millis(300 + rng.next_u64() % 300);
    testbed.set_config_hook(Some(Arc::new(move |c: ntcs::NucleusConfig| {
        c.with_name_cache(ttl, Duration::from_millis(100))
    })));
    let server = testbed.module(ms[2], "cell-sink").expect("sink module");
    let client = testbed.module(ms[3], "cell-src").expect("src module");
    let dst = client.locate("cell-sink").expect("locate sink");
    warm_direct(&client, dst, &server);
    let leased_at = client.nucleus().now_us();

    // The fault: the client never decodes the invalidation push — exactly
    // what a dropped NsInvalidate frame looks like from its side.
    client.nucleus().clear_control_intercept(NS_INVALIDATE_TYPE);
    let relocated = server.relocate_to(ms[1]).expect("relocate sink");
    let still_cached = matches!(
        client.nsp().cache().probe(dst, client.nucleus().now_us()),
        CacheProbe::Hit(_) | CacheProbe::Stale(_)
    );

    // The staleness bound: once the lease TTL has elapsed, the cache must
    // refuse to serve the (now wrong) entry.
    let ttl_us = u64::try_from(ttl.as_micros()).unwrap_or(u64::MAX);
    loop {
        let now = client.nucleus().now_us();
        if now.saturating_sub(leased_at) > ttl_us + 150_000 {
            break;
        }
        thread::sleep(Duration::from_millis(25));
    }
    let now = client.nucleus().now_us();
    assert!(
        !matches!(client.nsp().cache().probe(dst, now), CacheProbe::Hit(_)),
        "cache served an entry past its lease TTL with the invalidation lost"
    );
    assert!(
        client
            .nsp()
            .cache()
            .serve(dst, now)
            .expect("positive entries never error")
            .is_none(),
        "serve() handed out a lease older than its TTL"
    );

    // End to end: the next send re-resolves and lands on the relocated
    // incarnation, exactly once.
    let stop = Arc::new(AtomicBool::new(false));
    let (tally, pump) = spawn_pump(relocated, Arc::clone(&stop));
    let res = client.send_reliable(dst, &probe(1), Duration::from_secs(5));
    let (v, d) = reliable_verdict(res, &tally, 1);
    stop.store(true, Ordering::Relaxed);
    let _ = pump.join();
    (
        v,
        format!("{d} (lease {ttl:?}, entry survived the lost push: {still_cached})"),
    )
}

fn lookup_races_relocation_naming(rng: &mut SimRng) -> (Verdict, String) {
    let (testbed, ms) = sharded_net(false).expect("cell deployment");
    let server = testbed.module(ms[2], "cell-sink").expect("sink module");
    let old = server.my_uadd();
    let client = testbed.module(ms[3], "cell-src").expect("src module");
    assert_eq!(client.locate("cell-sink").expect("warm locate"), old);

    // Lookups hammer the name while the module moves under them. Each may
    // see the old or the new incarnation — never a third, and never the
    // old again once the new one has been observed.
    let stop = Arc::new(AtomicBool::new(false));
    let seen = Arc::new(Mutex::new(Vec::<UAdd>::new()));
    let looper = {
        let stop = Arc::clone(&stop);
        let seen = Arc::clone(&seen);
        let client = testbed.module(ms[3], "cell-looker").expect("looker");
        thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                match client.locate("cell-sink") {
                    Ok(u) => seen.lock().push(u),
                    Err(e) => assert!(typed_naming_error(&e), "untyped racing lookup: {e:?}"),
                }
            }
        })
    };
    thread::sleep(Duration::from_millis(1 + rng.next_u64() % 8));
    // The armed race can also eat the relocation handshake; a typed
    // failure hands the original binding back and the race assertions
    // still apply to it.
    let relocated = match server.relocate_to(ms[1]) {
        Ok(c) => c,
        Err(e) if typed_naming_error(&e.error) => e.commod,
        Err(e) => panic!("untyped relocation failure: {:?}", e.error),
    };
    let live = relocated.my_uadd();
    thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);
    let _ = looper.join();

    let observed = seen.lock().clone();
    let mut saw_live = false;
    for u in &observed {
        assert!(
            *u == old || *u == live,
            "racing lookup resolved a third incarnation {u:?}"
        );
        if *u == live {
            saw_live = true;
        }
        assert!(
            !(saw_live && *u == old),
            "lookup went back in time: old incarnation after new"
        );
    }

    // Converged: resolution lands on the live incarnation and a reliable
    // send delivers to it exactly once.
    let deadline = Instant::now() + Duration::from_secs(4);
    loop {
        match client.locate("cell-sink") {
            Ok(u) if u == live => break,
            Ok(u) => assert_eq!(u, live, "settled lookup returned a dead incarnation"),
            Err(e) => assert!(typed_naming_error(&e), "untyped settled lookup: {e:?}"),
        }
        assert!(
            Instant::now() < deadline,
            "lookup never settled on the live incarnation"
        );
        thread::sleep(Duration::from_millis(25));
    }
    let stop2 = Arc::new(AtomicBool::new(false));
    let (tally, pump) = spawn_pump(relocated, Arc::clone(&stop2));
    let res = client.send_reliable(live, &probe(9), Duration::from_secs(5));
    let (v, d) = reliable_verdict(res, &tally, 9);
    stop2.store(true, Ordering::Relaxed);
    let _ = pump.join();
    (
        v,
        format!(
            "{d} ({} raced lookups, live incarnation observed: {saw_live})",
            observed.len()
        ),
    )
}

fn shard_split_brain_naming() -> (Verdict, String) {
    let (testbed, ms) = sharded_net(false).expect("cell deployment");
    let map = testbed.shard_map();
    let name0 = name_on_shard(&map, 0, "cell-a");
    let name1 = name_on_shard(&map, 1, "cell-b");
    let s0 = testbed.module(ms[2], &name0).expect("shard-0 module");
    let s1 = testbed.module(ms[2], &name1).expect("shard-1 module");
    let client = testbed.module(ms[3], "cell-src").expect("src module");
    assert_eq!(client.locate(&name0).expect("warm locate 0"), s0.my_uadd());
    let dst1 = client.locate(&name1).expect("warm locate 1");
    assert_eq!(dst1, s1.my_uadd());
    warm_direct(&client, dst1, &s1);

    // Partition shard 1's group away.
    testbed.world().crash(ms[1]);

    // The surviving shard keeps resolving.
    assert_eq!(
        client.locate(&name0).expect("reachable shard must resolve"),
        s0.my_uadd()
    );
    // The partitioned shard's names error typed — and so do registrations
    // for them: the hash routing admits no second authority, so a split
    // brain cannot mint a conflicting record.
    let e = client
        .locate(&name1)
        .expect_err("resolved through a partitioned shard");
    assert!(typed_naming_error(&e), "untyped partitioned lookup: {e:?}");
    let usurper = testbed
        .commod(ms[3], "cell-usurper")
        .expect("usurper commod");
    let reg = usurper
        .register(&name1)
        .expect_err("registered into a partitioned shard");
    assert!(
        typed_naming_error(&reg),
        "untyped partitioned register: {reg:?}"
    );
    // Already-leased bindings keep working across the partition: the
    // warmed circuit to the shard-1 module still delivers.
    thread::scope(|scope| {
        let rx = scope.spawn(|| s1.receive(Some(Duration::from_secs(3))));
        client
            .send_reliable(dst1, &probe(4), Duration::from_secs(3))
            .expect("cached binding must ride out the partition");
        let inc = rx.join().expect("recv thread").expect("partition recv");
        assert_eq!(inc.decode::<Probe>().expect("probe").n, 4);
    });
    (
        Verdict::CleanlyErrored,
        format!(
            "partitioned shard errored typed ({e:?}); survivor shard and leased bindings stayed live"
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_sets_never_allow_hangs_or_failures() {
        for (f, l) in cells() {
            let exp = expected(f, l);
            assert!(!exp.is_empty());
            assert!(!exp.contains(&Verdict::Hung), "{f}/{l} allows Hung");
            assert!(!exp.contains(&Verdict::Failed), "{f}/{l} allows Failed");
        }
    }

    #[test]
    fn watchdog_converts_timeout_to_hung() {
        // A cell body that sleeps past the budget must come back as Hung,
        // not block the caller. Use the real entry point with a tiny budget
        // against the slowest cell setup — the budget fires during setup.
        let out = run_cell(
            Fault::CorruptCircuit,
            MatrixLayer::Lcm,
            1,
            Duration::from_micros(1),
        );
        assert_eq!(out.verdict, Verdict::Hung);
        assert!(!out.acceptable());
    }

    #[test]
    fn one_cell_end_to_end() {
        let out = run_cell(
            Fault::HalfCompletedSend,
            MatrixLayer::Lcm,
            0x5EED_0001,
            Duration::from_secs(20),
        );
        assert!(out.acceptable(), "{out:?}");
    }
}
