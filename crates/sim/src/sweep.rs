//! The seed sweep: run chaos scenarios across *many* seeds, not three.
//!
//! A scenario is a `fn(seed)` that panics on failure. The sweep runs every
//! (scenario, seed) pair under `catch_unwind`, collects the failures, and
//! prints each failing seed with its repro recipe — because every scenario
//! derives all randomness from its seed, re-running the seed replays the
//! failure.
//!
//! Seed selection is environment-driven so CI can scale it without a code
//! change:
//!
//! * `NTCS_SWEEP_SEEDS` — how many seeds (default 3).
//! * `NTCS_SWEEP_BASE` — when set (hex `0x…` or decimal), the first seed is
//!   the base itself and the rest are derived from it; when unset, the
//!   first seeds are the repo's three classic chaos seeds and the rest are
//!   derived. So `NTCS_SWEEP_SEEDS=1 NTCS_SWEEP_BASE=0x<failing-seed>`
//!   replays exactly one failing seed.
//! * `NTCS_SWEEP_ARTIFACT` — when set, [`SweepReport::write_artifact`]
//!   writes the failing-seed list to this path (CI uploads it).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

use crate::rng::SimRng;

/// The three hand-picked seeds the original chaos suite ran forever.
pub const CLASSIC_SEEDS: [u64; 3] = [0x5EED_0001, 0x0BAD_CAFE, 0x00DD_BA11];

fn parse_u64(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// The seed list for `count` seeds from an optional explicit base — the
/// pure core of [`seed_list`].
#[must_use]
pub fn seed_list_from(count: usize, base: Option<u64>) -> Vec<u64> {
    let mut seeds: Vec<u64> = match base {
        Some(b) => vec![b],
        None => CLASSIC_SEEDS.to_vec(),
    };
    seeds.truncate(count);
    let mut rng = SimRng::new(base.unwrap_or(0x5EED_0000)).fork("sweep-extension");
    while seeds.len() < count {
        let s = rng.next_u64();
        if !seeds.contains(&s) {
            seeds.push(s);
        }
    }
    seeds
}

/// The environment-driven seed list (see module docs for the variables).
#[must_use]
pub fn seed_list() -> Vec<u64> {
    let count = std::env::var("NTCS_SWEEP_SEEDS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(CLASSIC_SEEDS.len());
    let base = std::env::var("NTCS_SWEEP_BASE")
        .ok()
        .and_then(|s| parse_u64(&s));
    seed_list_from(count, base)
}

/// One failing (scenario, seed) pair.
#[derive(Debug, Clone)]
pub struct SeedFailure {
    /// The scenario that failed.
    pub scenario: String,
    /// The seed it failed at.
    pub seed: u64,
    /// The panic message.
    pub message: String,
}

/// The result of a sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Scenario names, in run order.
    pub scenarios: Vec<String>,
    /// The seeds swept.
    pub seeds: Vec<u64>,
    /// Every failing pair.
    pub failures: Vec<SeedFailure>,
}

impl SweepReport {
    /// Whether every (scenario, seed) pair passed.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Human-readable summary with one repro recipe per failing seed.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = format!(
            "seed sweep: {} scenario(s) x {} seed(s), {} failure(s)\n",
            self.scenarios.len(),
            self.seeds.len(),
            self.failures.len()
        );
        for f in &self.failures {
            out.push_str(&format!(
                "FAIL scenario={} seed={:#018x}\n  {}\n  repro: NTCS_SWEEP_SEEDS=1 NTCS_SWEEP_BASE={:#x} cargo test --release --test seed_sweep\n",
                f.scenario,
                f.seed,
                f.message.lines().next().unwrap_or(""),
                f.seed
            ));
        }
        out
    }

    /// Writes the failing-seed list to `path` (one `scenario seed message`
    /// line per failure), creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn write_artifact_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut body = String::new();
        for f in &self.failures {
            body.push_str(&format!(
                "scenario={} seed={:#018x} msg={}\n",
                f.scenario,
                f.seed,
                f.message.lines().next().unwrap_or("")
            ));
        }
        std::fs::write(path, body)
    }

    /// Writes the artifact to `$NTCS_SWEEP_ARTIFACT` when set and there are
    /// failures; returns the path written, if any.
    ///
    /// # Errors
    ///
    /// Filesystem errors.
    pub fn write_artifact(&self) -> std::io::Result<Option<String>> {
        let Ok(path) = std::env::var("NTCS_SWEEP_ARTIFACT") else {
            return Ok(None);
        };
        if self.failures.is_empty() {
            return Ok(None);
        }
        self.write_artifact_to(Path::new(&path))?;
        Ok(Some(path))
    }
}

/// Runs every scenario at every seed, catching panics. Scenarios run
/// serially — chaos scenarios are wall-clock sensitive and internally
/// serialized anyway.
#[must_use]
pub fn sweep(scenarios: &[(&str, &(dyn Fn(u64) + Sync))], seeds: &[u64]) -> SweepReport {
    let mut failures = Vec::new();
    for &(name, f) in scenarios {
        for &seed in seeds {
            if let Err(panic) = catch_unwind(AssertUnwindSafe(|| f(seed))) {
                let message = panic
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
                    .unwrap_or_else(|| "non-string panic".into());
                failures.push(SeedFailure {
                    scenario: name.to_string(),
                    seed,
                    message,
                });
            }
        }
    }
    SweepReport {
        scenarios: scenarios.iter().map(|(n, _)| (*n).to_string()).collect(),
        seeds: seeds.to_vec(),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_lists_are_deterministic_and_deduped() {
        assert_eq!(seed_list_from(3, None), CLASSIC_SEEDS.to_vec());
        assert_eq!(seed_list_from(1, None), vec![CLASSIC_SEEDS[0]]);
        let a = seed_list_from(100, None);
        let b = seed_list_from(100, None);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 100, "extended seeds must be unique");
        // An explicit base leads the list — the repro path.
        let r = seed_list_from(2, Some(0xDEAD_BEEF));
        assert_eq!(r[0], 0xDEAD_BEEF);
        assert_ne!(r[1], 0xDEAD_BEEF);
    }

    #[test]
    fn parse_accepts_hex_and_decimal() {
        assert_eq!(parse_u64("0x10"), Some(16));
        assert_eq!(parse_u64("0X10"), Some(16));
        assert_eq!(parse_u64(" 42 "), Some(42));
        assert_eq!(parse_u64("nope"), None);
    }

    #[test]
    fn sweep_catches_panics_and_reports_repro() {
        let flaky = |seed: u64| {
            assert!(seed != 7, "boom at seed 7");
        };
        let solid = |_seed: u64| {};
        let report = sweep(&[("flaky", &flaky), ("solid", &solid)], &[1, 7, 9]);
        assert!(!report.is_clean());
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].scenario, "flaky");
        assert_eq!(report.failures[0].seed, 7);
        assert!(report.failures[0].message.contains("boom"));
        let s = report.summary();
        assert!(s.contains("NTCS_SWEEP_BASE=0x7"), "{s}");
        // Artifact round-trip.
        let path = std::env::temp_dir().join("ntcs-sweep-test/failing-seeds.txt");
        report.write_artifact_to(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("scenario=flaky"));
        assert!(body.contains("seed=0x0000000000000007"));
        let _ = std::fs::remove_file(&path);
    }
}
