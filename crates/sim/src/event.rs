//! The deterministic event log — what same-seed replays compare.
//!
//! A run's log records only facts that are pure functions of the seed:
//! step numbers, virtual timestamps, fault actions, per-message verdicts,
//! and end-of-run tallies. Wall-clock durations, retry counts, and thread
//! interleavings are deliberately *not* loggable through this interface —
//! they vary across runs of the same seed and would break byte-identity.

use std::fmt::Write as _;

/// An append-only log of deterministic simulation events.
#[derive(Debug, Default, Clone)]
pub struct EventLog {
    lines: Vec<String>,
}

impl EventLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        EventLog::default()
    }

    /// Appends one event at `(step, virtual µs)`.
    pub fn record(&mut self, step: u64, t_us: i64, kind: &str, detail: &str) {
        self.lines
            .push(format!("step={step} t_us={t_us} {kind}: {detail}"));
    }

    /// Number of events recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether the log is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// The recorded lines, in order.
    #[must_use]
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// The whole log as one newline-terminated byte stream — the unit of
    /// the byte-identity acceptance check.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            let _ = writeln!(out, "{l}");
        }
        out
    }

    /// FNV-1a digest of [`EventLog::render`] — a cheap fingerprint for
    /// sweep reports ("seed X diverged: digest A ≠ digest B").
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in self.render().bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_digest_are_stable() {
        let mut a = EventLog::new();
        a.record(0, 0, "fault", "partition {0,1} vs {2}");
        a.record(1, 200_000, "verdict", "msg 3 acked");
        let mut b = EventLog::new();
        b.record(0, 0, "fault", "partition {0,1} vs {2}");
        b.record(1, 200_000, "verdict", "msg 3 acked");
        assert_eq!(a.render(), b.render());
        assert_eq!(a.digest(), b.digest());
        b.record(2, 400_000, "verdict", "msg 4 dead");
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!(a.render().ends_with('\n'));
    }
}
