//! The single seed that drives everything.
//!
//! FoundationDB-style deterministic simulation starts from one number: every
//! random decision a run makes — fault timing, latency and jitter, drop
//! schedules, partition windows, kill times, workload pacing — is derived
//! from the run seed, so printing that one seed is a complete repro recipe.
//!
//! [`SimRng`] is SplitMix64: tiny, fast, and with the crucial property that
//! [`SimRng::fork`] derives an *independent* child stream from a label.
//! Forking is what keeps schedules stable under refactoring: the fault
//! injector and the workload each fork their own stream, so adding a draw
//! to one never perturbs the other.

/// A seeded SplitMix64 stream. Everything random in a simulation run comes
/// from one root `SimRng` (or a [`SimRng::fork`] of it).
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// A stream rooted at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// The next draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix(self.state)
    }

    /// Uniform in `[lo, hi)`; `lo` when the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }

    /// True with probability `permille`/1000.
    pub fn chance(&mut self, permille: u32) -> bool {
        self.next_u64() % 1000 < u64::from(permille.min(1000))
    }

    /// Picks one element (panics on an empty slice, like indexing).
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next_u64() % items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = (self.next_u64() % (i as u64 + 1)) as usize;
            items.swap(i, j);
        }
    }

    /// Derives an independent child stream from a label. The child's
    /// sequence depends only on (parent seed, label) — not on how many
    /// draws the parent has made — so sibling streams never interfere.
    #[must_use]
    pub fn fork(&self, label: &str) -> SimRng {
        let mut h = self.state ^ 0x51AB_F00D_CAFE_D00D;
        for b in label.bytes() {
            h = mix(h ^ u64::from(b)).wrapping_mul(GOLDEN);
        }
        SimRng { state: mix(h) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_parent_position() {
        let parent = SimRng::new(7);
        let mut advanced = parent.clone();
        for _ in 0..13 {
            advanced.next_u64();
        }
        // fork() reads the *current* state; the stable idiom is to fork
        // all children up front, before drawing from the parent.
        assert_eq!(
            parent.fork("faults").next_u64(),
            SimRng::new(7).fork("faults").next_u64()
        );
        assert_ne!(
            parent.fork("faults").next_u64(),
            parent.fork("workload").next_u64()
        );
        assert_ne!(
            parent.fork("faults").next_u64(),
            advanced.fork("faults").next_u64(),
            "a moved parent roots different children"
        );
    }

    #[test]
    fn range_and_chance_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..200 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
        assert_eq!(r.range(5, 5), 5);
        let mut always = SimRng::new(4);
        assert!(always.chance(1000));
        let mut never = SimRng::new(4);
        assert!(!never.chance(0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::new(9);
        let mut v: Vec<u32> = (0..32).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        // And deterministic.
        let mut r2 = SimRng::new(9);
        let mut v2: Vec<u32> = (0..32).collect();
        r2.shuffle(&mut v2);
        assert_eq!(v, v2);
    }
}
