//! Experiment E13 (§2.2): failure notification discipline.
//!
//! "There is no automatic relocation or recovery from failed channels
//! (except for retry on open); notification is simply passed upward." The
//! ND/IP layers hide *details*, not *failures*; recovery belongs to the LCM
//! layer alone.

use std::time::Duration;

use ntcs::{NetKind, NtcsError};
use ntcs_repro::messages::Ask;
use ntcs_repro::scenarios::{line_internet, single_net};

const T: Option<Duration> = Some(Duration::from_secs(5));

#[test]
fn partition_surfaces_as_relocation_candidate() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.machines[1], "victim").unwrap();
    let client = lab.testbed.module(lab.machines[0], "observer").unwrap();
    let dst = client.locate("victim").unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 0,
                body: String::new(),
            },
        )
        .unwrap();
    server.receive(T).unwrap();

    lab.testbed
        .world()
        .set_partition(lab.machines[0], lab.machines[1], true);
    std::thread::sleep(Duration::from_millis(100));
    let err = client
        .send(
            dst,
            &Ask {
                n: 1,
                body: String::new(),
            },
        )
        .unwrap_err();
    assert!(err.is_relocation_candidate(), "{err}");

    // Healing the partition heals communication, with a fresh circuit.
    lab.testbed
        .world()
        .set_partition(lab.machines[0], lab.machines[1], false);
    let opened_before = client.metrics().circuits_opened;
    client
        .send(
            dst,
            &Ask {
                n: 2,
                body: String::new(),
            },
        )
        .unwrap();
    let got = server.receive(T).unwrap();
    assert_eq!(got.decode::<Ask>().unwrap().n, 2);
    assert!(client.metrics().circuits_opened > opened_before);
}

#[test]
fn receive_observes_peer_death_as_silence_not_error() {
    // A passive receiver cannot distinguish a dead peer from a quiet one
    // (§6.3: "at any point in time, one can be certain of very little") —
    // receive() times out rather than inventing an error.
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.machines[1], "quiet").unwrap();
    let client = lab.testbed.module(lab.machines[0], "gone").unwrap();
    let dst = client.locate("quiet").unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 0,
                body: String::new(),
            },
        )
        .unwrap();
    server.receive(T).unwrap();
    lab.testbed.world().crash(lab.machines[0]);
    let err = server
        .receive(Some(Duration::from_millis(200)))
        .unwrap_err();
    assert!(matches!(err, NtcsError::Timeout));
}

#[test]
fn lossy_network_drops_datagrams_but_circuits_report() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.machines[1], "lossy-sink").unwrap();
    let client = lab.testbed.module(lab.machines[0], "lossy-src").unwrap();
    let dst = client.locate("lossy-sink").unwrap();
    // Establish first, then crank the loss to 100%.
    client
        .send(
            dst,
            &Ask {
                n: 0,
                body: String::new(),
            },
        )
        .unwrap();
    server.receive(T).unwrap();
    lab.testbed
        .world()
        .set_drop_permille(lab.net, 1000)
        .unwrap();
    // Connectionless sends vanish silently (best-effort contract).
    client
        .cast(
            dst,
            &Ask {
                n: 1,
                body: String::new(),
            },
        )
        .unwrap();
    assert!(matches!(
        server.receive(Some(Duration::from_millis(150))),
        Err(NtcsError::Timeout)
    ));
    lab.testbed.world().set_drop_permille(lab.net, 0).unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 2,
                body: String::new(),
            },
        )
        .unwrap();
    assert_eq!(server.receive(T).unwrap().decode::<Ask>().unwrap().n, 2);
}

#[test]
fn latency_injection_slows_but_does_not_break() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.machines[1], "slow-sink").unwrap();
    let client = lab.testbed.module(lab.machines[0], "slow-src").unwrap();
    let dst = client.locate("slow-sink").unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 0,
                body: String::new(),
            },
        )
        .unwrap();
    server.receive(T).unwrap();
    lab.testbed
        .world()
        .set_latency(lab.net, Duration::from_millis(30))
        .unwrap();
    let started = std::time::Instant::now();
    client
        .send(
            dst,
            &Ask {
                n: 1,
                body: String::new(),
            },
        )
        .unwrap();
    let got = server.receive(T).unwrap();
    assert_eq!(got.decode::<Ask>().unwrap().n, 1);
    assert!(started.elapsed() >= Duration::from_millis(25));
}

#[test]
fn gateway_teardown_cascade_reaches_the_originator() {
    // §4.3: module death at the far end collapses the chained circuit hop by
    // hop "until the originating module is eventually reached."
    let lab = line_internet(3, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.edge_machines[2], "far").unwrap();
    let client = lab.testbed.module(lab.edge_machines[0], "near").unwrap();
    let dst = client.locate("far").unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 0,
                body: String::new(),
            },
        )
        .unwrap();
    server.receive(T).unwrap();

    lab.testbed.world().crash(lab.edge_machines[2]);
    std::thread::sleep(Duration::from_millis(800));
    // Both gateways observed the collapse.
    assert!(
        lab.gateways[1].metrics().teardowns >= 1,
        "gateway next to the death"
    );
    assert!(
        lab.gateways[0].metrics().teardowns >= 1,
        "cascade reached the first hop"
    );
    // And the originator's next send faults.
    let err = client
        .send(
            dst,
            &Ask {
                n: 1,
                body: String::new(),
            },
        )
        .unwrap_err();
    assert!(
        err.is_relocation_candidate() || matches!(err, NtcsError::NoForwardingAddress(_)),
        "{err}"
    );
}

#[test]
fn null_destination_is_parameter_checked() {
    // ALI-layer parameter checking (§2.4).
    let lab = single_net(1, NetKind::Mbx).unwrap();
    let c = lab.testbed.module(lab.machines[0], "checker").unwrap();
    let err = c
        .send(ntcs::UAdd::from_raw(0), &Ask::default())
        .unwrap_err();
    assert!(matches!(err, NtcsError::InvalidArgument(_)));
    let err = c.ping(ntcs::UAdd::from_raw(0), T).unwrap_err();
    assert!(matches!(err, NtcsError::InvalidArgument(_)));
}
