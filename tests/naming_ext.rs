//! Experiment E11 (§3, §7): the naming service is replaceable behind the
//! NSP layer — attribute-value naming and replicated servers drop in with
//! no change to anything else.

use std::time::Duration;

use ntcs::{AttrQuery, AttrSet, MachineType, NetKind, Testbed};
use ntcs_repro::messages::Ask;
use ntcs_repro::scenarios::single_net;

const T: Option<Duration> = Some(Duration::from_secs(10));

#[test]
fn attribute_value_naming_end_to_end() {
    let lab = single_net(3, NetKind::Mbx).unwrap();
    // Three workers with structured attributes.
    let mut handles = Vec::new();
    for (i, role) in ["search", "search", "index"].iter().enumerate() {
        let c = lab
            .testbed
            .commod(lab.machines[i % 3], &format!("w{i}"))
            .unwrap();
        let mut attrs = AttrSet::named(&format!("w{i}")).unwrap();
        attrs.set("role", role).unwrap();
        attrs
            .set("tier", if i == 0 { "gold" } else { "bronze" })
            .unwrap();
        c.register_attrs(&attrs).unwrap();
        handles.push(c);
    }
    let client = lab.testbed.module(lab.machines[0], "asker").unwrap();

    // Conjunctive equality + existence queries.
    let searchers = client
        .list(&AttrQuery::any().and_equals("role", "search").unwrap())
        .unwrap();
    assert_eq!(searchers.len(), 2);
    let gold = client
        .locate_query(
            &AttrQuery::any()
                .and_equals("role", "search")
                .unwrap()
                .and_equals("tier", "gold")
                .unwrap(),
        )
        .unwrap();
    assert_eq!(gold, handles[0].my_uadd());
    let with_tier = client
        .list(&AttrQuery::any().and_exists("tier").unwrap())
        .unwrap();
    assert_eq!(with_tier.len(), 3);
    // Plain names are just the `name=` attribute.
    assert_eq!(client.locate("w2").unwrap(), handles[2].my_uadd());
}

#[test]
fn resolution_prefers_newest_generation() {
    let lab = single_net(3, NetKind::Mbx).unwrap();
    let old = lab.testbed.module(lab.machines[1], "svc").unwrap();
    let old_uadd = old.my_uadd();
    let moved = old.relocate_to(lab.machines[2]).unwrap();
    let client = lab.testbed.module(lab.machines[0], "cli").unwrap();
    let found = client.locate("svc").unwrap();
    assert_eq!(found, moved.my_uadd());
    assert_ne!(found, old_uadd);
}

#[test]
fn replicated_name_service_is_transparent() {
    let mut tb = Testbed::builder();
    let net = tb.add_network(NetKind::Mbx, "lan");
    let m0 = tb.add_machine(MachineType::Sun, "h0", &[net]).unwrap();
    let m1 = tb.add_machine(MachineType::Vax, "h1", &[net]).unwrap();
    let m2 = tb.add_machine(MachineType::Apollo, "h2", &[net]).unwrap();
    tb.name_server_on(m0);
    tb.replica_on(m2);
    let mut testbed = tb.start().unwrap();

    let server = testbed.module(m1, "svc").unwrap();
    let client = testbed.module(m0, "cli").unwrap();
    // Resolution works via the primary…
    assert_eq!(client.locate("svc").unwrap(), server.my_uadd());
    std::thread::sleep(Duration::from_millis(200)); // replication drains
                                                    // …and survives losing it entirely: the NSP layer fails over (§7).
    assert!(testbed.remove_name_server());
    assert_eq!(client.locate("svc").unwrap(), server.my_uadd());

    // Even UAdd→phys resolution by a *fresh* module works off the replica.
    let newcomer = testbed.commod(m2, "late").unwrap();
    newcomer.register("late").unwrap();
    let dst = newcomer.locate("svc").unwrap();
    newcomer
        .send(
            dst,
            &Ask {
                n: 1,
                body: "via replica".into(),
            },
        )
        .unwrap();
    let got = server.receive(T).unwrap();
    assert_eq!(got.decode::<Ask>().unwrap().n, 1);
}

#[test]
fn distributed_uadd_spaces_do_not_collide() {
    // Primary (server id 0) and replica (server id 1) both assign UAdds; the
    // server-id bits keep the spaces disjoint (§3.2).
    let mut tb = Testbed::builder();
    let net = tb.add_network(NetKind::Mbx, "lan");
    let m0 = tb.add_machine(MachineType::Sun, "h0", &[net]).unwrap();
    let m1 = tb.add_machine(MachineType::Vax, "h1", &[net]).unwrap();
    tb.name_server_on(m0);
    tb.replica_on(m1);
    let mut testbed = tb.start().unwrap();

    let a = testbed.module(m0, "a").unwrap();
    assert_eq!(a.my_uadd().server_id().unwrap(), 0);
    testbed.remove_name_server();
    // New registrations now come from the replica, with its server id.
    let b = testbed.commod(m1, "b").unwrap();
    b.register("b").unwrap();
    assert_eq!(b.my_uadd().server_id().unwrap(), 1);
    assert_ne!(a.my_uadd(), b.my_uadd());
}

#[test]
fn rebuilt_primary_catches_up_from_replica_snapshot() {
    // §7 failure resiliency, end to end: primary dies, a replacement primary
    // pulls a snapshot from the surviving replica — registrations made
    // before the crash resolve through the NEW primary.
    let mut tb = Testbed::builder();
    let net = tb.add_network(NetKind::Mbx, "lan");
    let m0 = tb.add_machine(MachineType::Sun, "h0", &[net]).unwrap();
    let m1 = tb.add_machine(MachineType::Vax, "h1", &[net]).unwrap();
    let m2 = tb.add_machine(MachineType::Apollo, "h2", &[net]).unwrap();
    tb.name_server_on(m0);
    tb.replica_on(m2);
    let mut testbed = tb.start().unwrap();

    let server = testbed.module(m1, "survivor").unwrap();
    std::thread::sleep(Duration::from_millis(200)); // replication drains
    assert!(testbed.remove_name_server());
    testbed.restart_name_server(m0).unwrap();

    // A fresh module (which only preloads the NEW primary's address) can
    // resolve a registration that predates the crash.
    let fresh = testbed.module(m0, "fresh").unwrap();
    let found = fresh.locate("survivor").unwrap();
    assert_eq!(found, server.my_uadd());
    // And the new primary can still route messages end to end.
    fresh
        .send(
            found,
            &Ask {
                n: 5,
                body: "post-crash".into(),
            },
        )
        .unwrap();
    assert_eq!(server.receive(T).unwrap().decode::<Ask>().unwrap().n, 5);
}

#[test]
fn deregistered_names_disappear() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let svc = lab.testbed.module(lab.machines[1], "ephemeral").unwrap();
    let client = lab.testbed.module(lab.machines[0], "cli").unwrap();
    assert!(client.locate("ephemeral").is_ok());
    svc.deregister().unwrap();
    assert!(client.locate("ephemeral").is_err());
}
