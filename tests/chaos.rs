//! Chaos suite for the delivery supervisor. The seed-parameterized
//! scenarios live in `ntcs_repro::chaos` so this file (three classic seeds
//! per scenario, always-on in tier-1 CI) and the wide `seed_sweep` harness
//! (hundreds of seeds, scaled by environment) drive the same code; see
//! `tests/seed_sweep.rs` for the sweep.

use std::time::Duration;

use ntcs::{hop_kind, NetKind};
use ntcs_drts::MonitorService;
use ntcs_repro::chaos::{
    assert_valid_prometheus, gateway_drop_chaos, ns_replica_kill, partition_heal_chaos,
    slow_consumer_backpressure, BATCH_DELAY, SEEDS, SERIAL,
};
use ntcs_repro::messages::Ask;
use ntcs_repro::scenarios::line_internet;

#[test]
fn partition_heal_cycles_seed_a() {
    partition_heal_chaos(SEEDS[0]);
}

#[test]
fn partition_heal_cycles_seed_b() {
    partition_heal_chaos(SEEDS[1]);
}

#[test]
fn partition_heal_cycles_seed_c() {
    partition_heal_chaos(SEEDS[2]);
}

#[test]
fn ns_replica_kill_seed_a() {
    ns_replica_kill(SEEDS[0]);
}

#[test]
fn ns_replica_kill_seed_b() {
    ns_replica_kill(SEEDS[1]);
}

#[test]
fn ns_replica_kill_seed_c() {
    ns_replica_kill(SEEDS[2]);
}

#[test]
fn gateway_drop_storms_seed_a() {
    gateway_drop_chaos(SEEDS[0]);
}

#[test]
fn gateway_drop_storms_seed_b() {
    gateway_drop_chaos(SEEDS[1]);
}

#[test]
fn gateway_drop_storms_seed_c() {
    gateway_drop_chaos(SEEDS[2]);
}

#[test]
fn slow_consumer_backpressure_seed_a() {
    slow_consumer_backpressure(SEEDS[0]);
}

#[test]
fn slow_consumer_backpressure_seed_b() {
    slow_consumer_backpressure(SEEDS[1]);
}

#[test]
fn slow_consumer_backpressure_seed_c() {
    slow_consumer_backpressure(SEEDS[2]);
}

// ---------------------------------------------------------------------
// Causal-trace reconstruction. One traced message whose journey crosses a
// gateway splice AND an address-fault reconnection must be reassembled,
// hop by hop, from monitor records alone — and the testbed-wide
// observability report must expose the run in valid Prometheus text
// format. (Not seed-parameterized: the journey is fully deterministic.)
// ---------------------------------------------------------------------

#[test]
fn traced_journey_reconstructed_from_monitor_records() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let lab = line_internet(2, NetKind::Mbx).unwrap();
    lab.testbed.enable_batching(8, BATCH_DELAY);
    // The monitor lives on net1's edge machine; the client's hop reports
    // cross the gateway, the relocated server's stay machine-local.
    let monitor = MonitorService::spawn(&lab.testbed, lab.edge_machines[1]).unwrap();
    let server = lab
        .testbed
        .module(lab.edge_machines[0], "trace-sink")
        .unwrap();
    let client = lab
        .testbed
        .module(lab.edge_machines[0], "trace-src")
        .unwrap();
    client.set_hop_monitor(monitor.uadd());
    server.set_hop_monitor(monitor.uadd());
    lab.gateways[0].enable_hop_reports(monitor.uadd());

    // Warm up an untraced circuit on the server's ORIGINAL machine, so the
    // traced send below must take the §3.5 fault/forward/reconnect detour.
    let dst = client.locate("trace-sink").unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 0,
                body: String::new(),
            },
        )
        .unwrap();
    let warm = server.receive(Some(Duration::from_secs(5))).unwrap();
    assert_eq!(warm.trace_id(), 0, "untraced sends must stay untraced");

    // The sharded NS pushes a lease invalidation naming the successor as
    // soon as the server re-registers — which would hand the client the
    // new route up front and skip the detour this scenario exists to
    // trace. Ignore the push: the traced send must discover the move the
    // §3.5 way, as it would if the push were lost. (Push-covered recovery
    // is exercised by tests/naming_scale.rs.)
    client
        .nucleus()
        .clear_control_intercept(ntcs_naming::protocol::NS_INVALIDATE_TYPE);

    // Relocate the server across the gateway, then send ONE traced message
    // to the stale UAdd: its journey is send → fault → reconnect → splice
    // → deliver, all under one trace id.
    let server = server.relocate_to(lab.edge_machines[1]).unwrap();
    let (msg_id, trace) = client
        .send_traced(
            dst,
            &Ask {
                n: 7,
                body: String::new(),
            },
        )
        .unwrap();
    assert_ne!(trace.raw(), 0);
    let got = server.receive(Some(Duration::from_secs(5))).unwrap();
    assert_eq!(got.decode::<Ask>().unwrap().n, 7);
    assert_eq!(
        got.trace_id(),
        trace.raw(),
        "trace id must survive the wire"
    );
    assert!(
        got.span() >= 1,
        "the reconnection leg must bump the span, got {}",
        got.span()
    );

    // The monitor reassembles the journey from cast records alone. Hop
    // casts are asynchronous — and with batching enabled the cross-gateway
    // casts may trail the machine-local DELIVER by a flush interval — so
    // poll until the whole five-hop journey has landed, not just its tail.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let chain = loop {
        let chain = monitor.trace_chain(trace.raw());
        let complete = chain.len() >= 5 && chain.iter().any(|h| h.kind == hop_kind::DELIVER);
        if complete || std::time::Instant::now() > deadline {
            break chain;
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    let kinds: Vec<u32> = chain.iter().map(|h| h.kind).collect();
    assert_eq!(
        kinds,
        vec![
            hop_kind::SEND,
            hop_kind::SPLICE,
            hop_kind::FAULT,
            hop_kind::RECONNECT,
            hop_kind::DELIVER,
        ],
        "full journey: {chain:#?}"
    );
    assert!(chain.iter().all(|h| h.trace_id == trace.raw()));
    let deliver = chain.last().unwrap();
    assert_eq!(deliver.msg_id, msg_id);
    assert!(
        chain
            .windows(2)
            .all(|w| w[0].timestamp_us <= w[1].timestamp_us),
        "hop timestamps must be monotone in journey order"
    );
    // The splice was reported by the gateway itself, not an endpoint.
    let splice = &chain[1];
    assert!(
        splice.module_name.starts_with("gw-"),
        "splice hop must come from the gateway, got {:?}",
        splice.module_name
    );
    // No leakage into other trace ids.
    assert!(monitor.trace_chain(trace.raw() ^ 1).is_empty());

    // The same reconstruction works remotely, over the NTCS itself.
    let remote = MonitorService::query_trace(&client, monitor.uadd(), trace.raw()).unwrap();
    assert_eq!(remote.len(), chain.len());
    assert_eq!(
        remote.iter().map(|h| h.kind).collect::<Vec<_>>(),
        kinds,
        "remote query must reconstruct the same journey"
    );

    // Testbed-wide export: valid Prometheus text, counters plus at least
    // four populated histograms.
    let prom = lab.testbed.observability_report();
    assert_valid_prometheus(&prom);
    assert!(prom.contains("# TYPE ntcs_sends_total counter"));
    for hist in [
        "ntcs_send_to_deliver_us",
        "ntcs_circuit_establish_us",
        "ntcs_ns_lookup_us",
        "ntcs_fault_recovery_us",
    ] {
        assert!(
            prom.contains(&format!("# TYPE {hist} histogram")),
            "missing histogram {hist}"
        );
        let populated = prom.lines().any(|l| {
            l.starts_with(&format!("{hist}_count"))
                && l.rsplit_once(' ').is_some_and(|(_, v)| v != "0")
        });
        assert!(populated, "histogram {hist} recorded no samples:\n{prom}");
    }
    // The human-readable rendering covers the same modules.
    let table = lab.testbed.observability_table();
    assert!(table.contains("trace-src"));

    monitor.stop();
    server.shutdown();
    client.shutdown();
}
