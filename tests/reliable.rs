//! E7 ablation: the reliable-delivery extension the paper declined to build
//! (§3.5). With it, relocation-window losses go to zero — at the price of
//! acks, retransmissions, and duplicate-suppression state, which is the
//! paper's "redundant recovery mechanisms … common in layered designs"
//! trade, now measurable.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use ntcs::NetKind;
use ntcs_drts::host::Handler;
use ntcs_drts::ServiceHost;
use ntcs_repro::messages::Ask;
use ntcs_repro::scenarios::single_net;
use parking_lot::Mutex;

const T: Option<Duration> = Some(Duration::from_secs(10));

#[test]
fn reliable_send_delivers_exactly_once_in_static_config() {
    // Acks carry *delivery* semantics, so the receiver runs concurrently
    // (a reliable sender to a module that never receives would rightly
    // stall — §3.5's buffered-messages distinction).
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.machines[1], "sink").unwrap();
    let client = lab.testbed.module(lab.machines[0], "src").unwrap();
    let dst = client.locate("sink").unwrap();
    let receiver = std::thread::spawn(move || {
        let mut seen = Vec::new();
        for _ in 0..20 {
            seen.push(server.receive(T).unwrap().decode::<Ask>().unwrap().n);
        }
        seen
    });
    for i in 0..20u32 {
        client
            .send_reliable(
                dst,
                &Ask {
                    n: i,
                    body: String::new(),
                },
                Duration::from_secs(5),
            )
            .unwrap();
    }
    let seen = receiver.join().unwrap();
    assert_eq!(seen, (0..20).collect::<Vec<_>>());
    assert_eq!(client.metrics().retransmissions, 0, "no retransmits needed");
}

#[test]
fn reliable_send_survives_frame_loss() {
    // 40% frame loss on the wire: plain sends drop messages; reliable sends
    // deliver every one, exactly once.
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.machines[1], "lossy-sink").unwrap();
    let client = lab.testbed.module(lab.machines[0], "lossy-src").unwrap();
    let dst = client.locate("lossy-sink").unwrap();
    // Establish first (the open handshake is not retried against loss).
    client
        .send(
            dst,
            &Ask {
                n: 999,
                body: String::new(),
            },
        )
        .unwrap();
    server.receive(T).unwrap();
    lab.testbed.world().set_drop_permille(lab.net, 400).unwrap();

    const N: u32 = 15;
    let receiver = std::thread::spawn(move || {
        // Keep pumping until the wire goes quiet: a retransmit whose *ack*
        // was dropped still needs a live receiver to re-ack it.
        let mut got = HashSet::new();
        loop {
            match server.receive(Some(Duration::from_secs(2))) {
                Ok(m) => {
                    got.insert(m.decode::<Ask>().unwrap().n);
                }
                Err(_) => return (got, server),
            }
        }
    });
    for i in 0..N {
        client
            .send_reliable(
                dst,
                &Ask {
                    n: i,
                    body: String::new(),
                },
                Duration::from_secs(20),
            )
            .unwrap();
    }
    let (got, server) = receiver.join().unwrap();
    assert_eq!(got.len(), N as usize, "all delivered despite 40% loss");
    let m = client.metrics();
    assert!(m.retransmissions > 0, "loss must have forced retransmits");
    // Exactly-once at the application: duplicates were suppressed below.
    let dups = server.metrics().duplicates_suppressed;
    println!(
        "retransmissions={}, duplicates suppressed={dups}",
        m.retransmissions
    );
}

#[test]
fn reliable_send_closes_the_relocation_window() {
    // The E7 ablation: the same relocation-under-load scenario, but with
    // reliable sends — zero loss, measured.
    let lab = single_net(3, NetKind::Mbx).unwrap();
    let delivered = Arc::new(Mutex::new(Vec::new()));
    let d2 = Arc::clone(&delivered);
    let handler: Handler = Box::new(move |_commod, msg| {
        if let Ok(a) = msg.decode::<Ask>() {
            d2.lock().push(a.n);
        }
    });
    let host = ServiceHost::spawn(&lab.testbed, lab.machines[1], "mover", handler).unwrap();
    let client = lab.testbed.module(lab.machines[0], "pusher").unwrap();
    let dst = client.locate("mover").unwrap();

    for i in 0..30u32 {
        if i == 10 {
            host.relocate(lab.machines[2]).unwrap();
        }
        if i == 20 {
            host.relocate(lab.machines[1]).unwrap();
        }
        client
            .send_reliable(
                dst,
                &Ask {
                    n: i,
                    body: String::new(),
                },
                Duration::from_secs(10),
            )
            .unwrap();
    }
    // Give the last handler dispatch a moment.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while delivered.lock().len() < 30 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    // At-least-once across reconfiguration: no losses; duplicates are
    // possible in the tiny window where the old incarnation delivered but
    // its ack died with it — the exact residue the paper assigns to
    // transaction management.
    let mut got = delivered.lock().clone();
    got.sort_unstable();
    got.dedup();
    assert_eq!(
        got,
        (0..30).collect::<Vec<_>>(),
        "reliable mode must close the reconfiguration loss window"
    );
    println!(
        "client: {} retransmissions, {} reconnects",
        client.metrics().retransmissions,
        client.metrics().reconnects
    );
    host.stop();
}

#[test]
fn dropped_ack_forces_retransmit_but_delivers_exactly_once() {
    // The sharpest duplicate-suppression case, injected deterministically:
    // the message arrives, the *delivery ack* is dropped, the sender
    // retransmits, and the receiver must suppress the duplicate and re-ack.
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.machines[1], "ack-sink").unwrap();
    let client = lab.testbed.module(lab.machines[0], "ack-src").unwrap();
    let dst = client.locate("ack-sink").unwrap();
    // Warm the circuit so the reliable send below involves no opens.
    client
        .send(
            dst,
            &Ask {
                n: 0,
                body: String::new(),
            },
        )
        .unwrap();
    server.receive(T).unwrap();

    let sender = std::thread::spawn(move || {
        let r = client.send_reliable(
            dst,
            &Ask {
                n: 7,
                body: String::new(),
            },
            Duration::from_secs(10),
        );
        (r, client)
    });
    // Let the data frame cross, then arm the trap: the next frame on the
    // wire is the delivery ack receive() emits below.
    std::thread::sleep(Duration::from_millis(100));
    lab.testbed.world().drop_next_frames(lab.net, 1).unwrap();
    let first = server.receive(T).unwrap();
    assert_eq!(first.decode::<Ask>().unwrap().n, 7);
    // Keep pumping: the retransmit arrives as a duplicate, is suppressed,
    // and triggers the re-ack that lets the sender converge. The app must
    // never see the message twice.
    assert!(matches!(
        server.receive(Some(Duration::from_secs(2))),
        Err(ntcs::NtcsError::Timeout)
    ));
    let (result, client) = sender.join().unwrap();
    result.unwrap();
    assert!(
        client.metrics().retransmissions >= 1,
        "the lost ack forced a retransmit"
    );
    assert!(
        server.metrics().duplicates_suppressed >= 1,
        "the retransmit was suppressed, not delivered twice"
    );
    assert_eq!(client.metrics().dead_letters, 0);
}

#[test]
fn reliable_to_dead_peer_times_out() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.machines[1], "gone").unwrap();
    let client = lab.testbed.module(lab.machines[0], "src").unwrap();
    let dst = client.locate("gone").unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 0,
                body: String::new(),
            },
        )
        .unwrap();
    server.receive(T).unwrap();
    lab.testbed.world().crash(lab.machines[1]);
    std::thread::sleep(Duration::from_millis(50));
    let err = client
        .send_reliable(
            dst,
            &Ask {
                n: 1,
                body: String::new(),
            },
            Duration::from_secs(2),
        )
        .unwrap_err();
    // The delivery supervisor surfaces an exhausted recovery budget as a
    // typed deadline error and dead-letters the message.
    assert!(matches!(err, ntcs::NtcsError::DeadlineExceeded), "{err}");
    let m = client.metrics();
    assert_eq!(m.dead_letters, 1);
    assert!(m.retransmissions > 0, "it kept trying until the deadline");
    assert!(m.retry_attempts > 0, "supervised retries were counted");
    assert!(
        m.breaker_trips >= 1,
        "consecutive failures must trip the peer's breaker, trips={}",
        m.breaker_trips
    );
    // Broken while the trip is fresh, Degraded once the half-open timer has
    // elapsed — either way, not Healthy.
    assert_ne!(client.circuit_health(dst), ntcs::CircuitHealth::Healthy);
}

#[test]
fn dedupe_eviction_never_resurrects_duplicates_or_strands_dead_letters() {
    // Regression for the bounded duplicate-suppression window: with a
    // window far smaller than the message count, keys are evicted
    // constantly — yet eviction of *old* keys must never let a *current*
    // retransmit through twice, and the eviction churn must never push a
    // healthy send into the dead-letter path.
    const WINDOW: usize = 4;
    const ROUNDS: u32 = 4;
    const FILLERS: u32 = WINDOW as u32 + 2; // overflow the window each round

    let lab = single_net(2, NetKind::Mbx).unwrap();
    // The receiver gets the tiny window; everything else is stock.
    let mut config =
        ntcs::NucleusConfig::new(lab.machines[1], "tiny-window").with_dedupe_window(WINDOW);
    config.well_known = lab.testbed.ns_well_known();
    let server = Arc::new(
        ntcs::ComMod::bind_with_config(lab.testbed.world(), config, lab.testbed.ns_servers())
            .unwrap(),
    );
    server.register("tiny-window").unwrap();
    let client = Arc::new(lab.testbed.module(lab.machines[0], "churn-src").unwrap());
    let dst = client.locate("tiny-window").unwrap();

    // Warm the circuit so reliable sends involve no opens.
    client
        .send(
            dst,
            &Ask {
                n: 0,
                body: String::new(),
            },
        )
        .unwrap();
    server.receive(T).unwrap();

    let mut delivered: Vec<u32> = Vec::new();
    let mut next_filler = 1000u32;
    for round in 0..ROUNDS {
        // One send whose delivery ack we drop: the data arrives, the
        // retransmit follows, and the receiver must suppress it even
        // though the window has been fully churned since last round.
        let traced_n = 100 + round;
        let sender = {
            let client = Arc::clone(&client);
            std::thread::spawn(move || {
                client.send_reliable(
                    dst,
                    &Ask {
                        n: traced_n,
                        body: String::new(),
                    },
                    Duration::from_secs(10),
                )
            })
        };
        // Let the data frame cross, then drop the next frame on the wire —
        // the delivery ack the receive() below emits.
        std::thread::sleep(Duration::from_millis(100));
        lab.testbed.world().drop_next_frames(lab.net, 1).unwrap();
        let got = server.receive(T).unwrap();
        assert_eq!(got.decode::<Ask>().unwrap().n, traced_n);
        delivered.push(traced_n);
        // Pump: the retransmit must be suppressed, not re-delivered.
        assert!(
            matches!(
                server.receive(Some(Duration::from_secs(2))),
                Err(ntcs::NtcsError::Timeout)
            ),
            "round {round}: retransmit leaked through to the application"
        );
        sender.join().unwrap().unwrap();

        // Churn the window past its capacity so `traced_n`'s key is
        // evicted before the next round.
        for _ in 0..FILLERS {
            let n = next_filler;
            next_filler += 1;
            let receiver = {
                let server = Arc::clone(&server);
                std::thread::spawn(move || server.receive(T))
            };
            client
                .send_reliable(
                    dst,
                    &Ask {
                        n,
                        body: String::new(),
                    },
                    Duration::from_secs(10),
                )
                .unwrap();
            let got = receiver.join().unwrap().unwrap();
            delivered.push(got.decode::<Ask>().unwrap().n);
        }
    }

    // Exactly-once at the application across the whole churn.
    let mut unique: HashSet<u32> = HashSet::new();
    for &n in &delivered {
        assert!(unique.insert(n), "message {n} delivered more than once");
    }
    assert_eq!(
        delivered.len() as u32,
        ROUNDS * (1 + FILLERS),
        "every send delivered"
    );

    let m = client.metrics();
    assert_eq!(m.dead_letters, 0, "eviction churn must not strand messages");
    assert!(
        m.retransmissions >= u64::from(ROUNDS),
        "each dropped ack forced a retransmit, got {}",
        m.retransmissions
    );
    assert!(
        server.metrics().duplicates_suppressed >= u64::from(ROUNDS),
        "each retransmit was suppressed despite the evicted window, got {}",
        server.metrics().duplicates_suppressed
    );
}
