//! Experiment E6 (§4): portable internet support.
//!
//! IVCs across disjoint networks, "either as a single LVC on the local
//! network, or as a chained set of LVCs linked through one or more
//! Gateways" — topology centralized in the naming service, establishment
//! decentralized, no inter-gateway protocol.

use std::time::Duration;

use ntcs::{MachineType, NetKind, Testbed};
use ntcs_repro::messages::{Answer, Ask};
use ntcs_repro::scenarios::line_internet;

const T: Option<Duration> = Some(Duration::from_secs(15));

#[test]
fn chains_of_increasing_length() {
    // k = 2..5 networks ⇒ 1..4 gateway hops end to end.
    for k in 2..=5 {
        let lab = line_internet(k, NetKind::Mbx).unwrap();
        let server = lab
            .testbed
            .module(lab.edge_machines[k - 1], "far-end")
            .unwrap();
        let client = lab
            .testbed
            .module(lab.edge_machines[0], "near-end")
            .unwrap();
        let dst = client.locate("far-end").unwrap();
        let t = std::thread::spawn(move || {
            let m = server.receive(T).unwrap();
            let a: Ask = m.decode().unwrap();
            server
                .reply(
                    &m,
                    &Answer {
                        n: a.n,
                        body: a.body,
                    },
                )
                .unwrap();
        });
        let reply = client
            .send_receive(
                dst,
                &Ask {
                    n: k as u32,
                    body: format!("{k} nets"),
                },
                T,
            )
            .unwrap();
        let ans: Answer = reply.decode().unwrap();
        assert_eq!(ans.n, k as u32);
        t.join().unwrap();
        // Every gateway on the line spliced exactly one circuit.
        for gw in &lab.gateways {
            assert_eq!(gw.metrics().circuits_spliced, 1, "k={k}");
        }
        // Exactly one route query, answered centrally (§4.2).
        assert_eq!(client.metrics().route_queries, 1);
    }
}

#[test]
fn no_inter_gateway_communication() {
    // §4.2: "no inter-gateway communication ever takes place." Gateways
    // never open circuits *to each other's UAdds* — their nucleus metrics
    // show zero self-initiated sends beyond registration.
    let lab = line_internet(3, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.edge_machines[2], "svc").unwrap();
    let client = lab.testbed.module(lab.edge_machines[0], "cli").unwrap();
    let dst = client.locate("svc").unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 1,
                body: "x".into(),
            },
        )
        .unwrap();
    server.receive(T).unwrap();
    for gw in &lab.gateways {
        let m = gw.nucleus().metrics().snapshot();
        // The gateway's own nucleus sent only its registration request (and
        // possible replication casts): no gateway-to-gateway protocol.
        assert!(
            m.sends <= 2,
            "gateway sent {} nucleus messages of its own",
            m.sends
        );
    }
}

#[test]
fn internet_over_mixed_ipcs_kinds() {
    // net0 is mailbox-based, net1 is real TCP: the same portable gateway
    // code splices across both (the paper's "the same Gateway module … for
    // all networks and machines").
    let mut tb = Testbed::builder();
    let mbx_net = tb.add_network(NetKind::Mbx, "apollo-ring");
    let tcp_net = tb.add_network(NetKind::Tcp, "ethernet");
    let ns_host = tb
        .add_machine(MachineType::Sun, "ns-host", &[mbx_net, tcp_net])
        .unwrap();
    let apollo = tb
        .add_machine(MachineType::Apollo, "apollo", &[mbx_net])
        .unwrap();
    let vax = tb.add_machine(MachineType::Vax, "vax", &[tcp_net]).unwrap();
    let gw_host = tb
        .add_machine(MachineType::M68k, "gw-host", &[mbx_net, tcp_net])
        .unwrap();
    tb.name_server_on(ns_host);
    let testbed = tb.start().unwrap();
    let gw = testbed.gateway(gw_host, "mixed-gw").unwrap();

    let server = testbed.module(vax, "tcp-side").unwrap();
    let client = testbed.module(apollo, "mbx-side").unwrap();
    let dst = client.locate("tcp-side").unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 7,
                body: "across kinds".into(),
            },
        )
        .unwrap();
    let got = server.receive(T).unwrap();
    assert_eq!(got.decode::<Ask>().unwrap().n, 7);
    assert_eq!(gw.metrics().circuits_spliced, 1);
    // Apollo → VAX is a representation change: packed mode, end to end.
    assert_eq!(got.raw().payload.mode, ntcs::ConvMode::Packed);
}

#[test]
fn gateway_death_breaks_routes_until_replaced() {
    let lab = line_internet(2, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.edge_machines[1], "svc").unwrap();
    let client = lab.testbed.module(lab.edge_machines[0], "cli").unwrap();
    let dst = client.locate("svc").unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 1,
                body: "up".into(),
            },
        )
        .unwrap();
    server.receive(T).unwrap();

    // Kill the only gateway's machine.
    let gw_machine = lab
        .testbed
        .world()
        .machines()
        .iter()
        .find(|m| m.name == "gw-host0")
        .unwrap()
        .id;
    lab.testbed.world().crash(gw_machine);
    std::thread::sleep(Duration::from_millis(700));

    // Existing circuit is dead, and re-establishment cannot find a path —
    // but the gateway is still *registered* (it crashed without
    // deregistering), so establishment fails at the ND level rather than
    // with NoRoute.
    let err = client
        .send(
            dst,
            &Ask {
                n: 2,
                body: "down".into(),
            },
        )
        .unwrap_err();
    assert!(
        err.is_relocation_candidate()
            || matches!(
                err,
                ntcs::NtcsError::NoRoute { .. } | ntcs::NtcsError::NoForwardingAddress(_)
            ),
        "{err}"
    );

    // The dead gateway crashed without deregistering; the naming service
    // still advertises it, so routing may keep picking it (the paper's
    // centralized topology is only as fresh as its registrations). The
    // process controller / operator marks it dead…
    lab.testbed
        .name_server()
        .unwrap()
        .db()
        .lock()
        .deregister(lab.gateways[0].uadd());

    // …and a replacement gateway on a fresh machine restores connectivity.
    let world = lab.testbed.world();
    let nets = [lab.nets[0], lab.nets[1]];
    let new_gw_machine = world
        .add_machine(MachineType::Apollo, "gw-host-replacement", &nets)
        .unwrap();
    let _new_gw = lab
        .testbed
        .gateway(new_gw_machine, "gw-replacement")
        .unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 3,
                body: "restored".into(),
            },
        )
        .unwrap();
    let got = server.receive(T).unwrap();
    assert_eq!(got.decode::<Ask>().unwrap().n, 3);
}

#[test]
fn direct_path_preferred_when_networks_shared() {
    // When source and destination share a network, no gateway is involved
    // even if one exists (single LVC, zero route queries).
    let lab = line_internet(2, NetKind::Mbx).unwrap();
    let a = lab.testbed.module(lab.edge_machines[0], "same-a").unwrap();
    let b = lab.testbed.commod(lab.edge_machines[0], "same-b").unwrap();
    b.register("same-b").unwrap();
    let dst = a.locate("same-b").unwrap();
    a.send(
        dst,
        &Ask {
            n: 1,
            body: "local".into(),
        },
    )
    .unwrap();
    b.receive(T).unwrap();
    assert_eq!(a.metrics().route_queries, 0);
    assert_eq!(lab.gateways[0].metrics().circuits_spliced, 0);
}
