//! Same seed ⇒ same run, byte for byte.
//!
//! The tentpole acceptance check for the deterministic simulation runtime:
//! two runs of the same seed over a *virtual-time* world produce
//! byte-identical event logs — including the hop-record sequences the
//! monitor reassembles, whose timestamps come from the virtual clock. Any
//! wall-clock leakage into recorded state (hop timestamps, breaker
//! decisions, DRTS staleness) shows up here as a diff between two runs
//! that should be indistinguishable.
//!
//! The run itself is not gentle: a seed-placed armed frame drop, a forced
//! circuit corruption, and a seed-placed split-brain window all land
//! mid-traffic, and the log records every verdict.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ntcs::{ComMod, MachineType, NetworkId, TraceId, UAdd};
use ntcs_drts::host::Handler;
use ntcs_drts::{MonitorService, ServiceHost};
use ntcs_naming::protocol::NS_INVALIDATE_TYPE;
use ntcs_repro::messages::Ask;
use ntcs_sim::{
    DcId, EventLog, FaultInjector, SimConfig, SimHarness, SimRng, Simulation, Topology, Workload,
};
use parking_lot::Mutex;

/// The step at which `det-mover` relocates: after the split-brain window
/// (latest `partition_step + 1` is 7) so the forwarding walk sees a healed
/// network.
const RELOCATE_STEP: u64 = 8;

/// Seed-planned fault schedule: every decision drawn up front from a fork
/// of the run seed, so the schedule is identical no matter what the
/// workload does.
struct PlannedFaults {
    net: NetworkId,
    east: DcId,
    west: DcId,
    drop_step: u64,
    partition_step: u64,
}

impl PlannedFaults {
    fn plan(rng: &SimRng, net: NetworkId, east: DcId, west: DcId) -> Self {
        let mut r = rng.fork("faults");
        PlannedFaults {
            net,
            east,
            west,
            drop_step: r.range(1, 3),
            partition_step: r.range(5, 7),
        }
    }
}

impl FaultInjector for PlannedFaults {
    fn name(&self) -> &str {
        "planned-drop-corrupt-split"
    }

    fn inject(&mut self, h: &mut SimHarness, step: u64) {
        if step == self.drop_step {
            h.world().drop_next_frames(self.net, 1).unwrap();
            h.record("fault", "armed drop_next=1");
        }
        if step == self.partition_step {
            let (world, east, west) = (h.world().clone(), self.east, self.west);
            h.topology().partition_datacenters(&world, east, west);
            h.record("fault", "split-brain east|west");
        }
        if step == self.partition_step + 1 {
            h.world().heal_all_partitions();
            h.record("fault", "healed split-brain");
        }
    }

    fn heal(&mut self, h: &mut SimHarness) {
        h.world().heal_all_partitions();
        h.record("fault", "heal: all partitions lifted");
    }
}

/// Traffic whose every recorded fact is a pure function of the seed: which
/// steps send traced, which step forces a circuit corruption, and the
/// per-message verdicts.
struct SeededTraffic {
    rng: SimRng,
    machines: Vec<ntcs::MachineId>,
    partition_step: u64,
    corrupt_step: u64,
    client: Option<ComMod>,
    monitor: Option<MonitorService>,
    /// A module relocated at [`RELOCATE_STEP`] so the client's next send to
    /// its old address walks the forwarding path and invalidates the
    /// cached lease — synchronously, on the workload thread.
    mover: Option<ComMod>,
    mover_dst: UAdd,
    dst: UAdd,
    stop: Arc<AtomicBool>,
    tally: Arc<Mutex<HashMap<u32, u32>>>,
    pump: Option<std::thread::JoinHandle<ComMod>>,
    traced: Vec<(u32, TraceId)>,
    acked: Vec<u32>,
}

impl SeededTraffic {
    fn new(rng: &SimRng, machines: Vec<ntcs::MachineId>, partition_step: u64) -> Self {
        let mut r = rng.fork("workload");
        SeededTraffic {
            rng: r.clone(),
            machines,
            partition_step,
            corrupt_step: r.range(3, 5),
            client: None,
            monitor: None,
            mover: None,
            mover_dst: UAdd::NAME_SERVER,
            dst: UAdd::NAME_SERVER,
            stop: Arc::new(AtomicBool::new(false)),
            tally: Arc::new(Mutex::new(HashMap::new())),
            pump: None,
            traced: Vec::new(),
            acked: Vec::new(),
        }
    }

    fn client(&self) -> &ComMod {
        self.client.as_ref().unwrap()
    }
}

impl Workload for SeededTraffic {
    fn name(&self) -> &str {
        "seeded-traffic"
    }

    fn setup(&mut self, h: &mut SimHarness) -> ntcs::Result<()> {
        let tb = h.testbed();
        // Monitor on the NS machine; the sink reports DELIVER hops, the
        // client reports SEND (and any reconnect legs) — all timestamped
        // on the virtual clock.
        let monitor = MonitorService::spawn(tb, self.machines[0])?;
        let sink = tb.module(self.machines[1], "det-sink")?;
        let client = tb.module(self.machines[2], "det-src")?;
        sink.set_hop_monitor(monitor.uadd());
        client.set_hop_monitor(monitor.uadd());
        self.dst = client.locate("det-sink")?;
        // A second destination exists only to be relocated. The NS lease
        // push that relocation triggers lands on the client's pump at a
        // wall-dependent step, so it is suppressed; the stale lease then
        // survives until the client's own send walks the forwarding path —
        // a synchronous, seed-deterministic invalidation.
        client.nucleus().clear_control_intercept(NS_INVALIDATE_TYPE);
        let mover = tb.module(self.machines[1], "det-mover")?;
        self.mover_dst = client.locate("det-mover")?;
        client.send(
            self.mover_dst,
            &Ask {
                n: 901,
                body: String::new(),
            },
        )?;
        self.mover = Some(mover);
        let stop = Arc::clone(&self.stop);
        let tally = Arc::clone(&self.tally);
        self.pump = Some(std::thread::spawn(move || loop {
            match sink.receive(Some(Duration::from_millis(25))) {
                Ok(m) => {
                    if let Ok(a) = m.decode::<Ask>() {
                        *tally.lock().entry(a.n).or_insert(0) += 1;
                    }
                }
                Err(ntcs::NtcsError::Timeout) => {
                    if stop.load(Ordering::SeqCst) {
                        return sink;
                    }
                }
                Err(_) => return sink,
            }
        }));
        // Warm the circuit so step 0 starts from a known state.
        client.send_reliable(
            self.dst,
            &Ask {
                n: 900,
                body: String::new(),
            },
            Duration::from_secs(5),
        )?;
        self.client = Some(client);
        self.monitor = Some(monitor);
        h.record(
            "setup",
            &format!("corrupt_step={} warm circuit up", self.corrupt_step),
        );
        Ok(())
    }

    fn step(&mut self, h: &mut SimHarness, step: u64) -> ntcs::Result<()> {
        let n = u32::try_from(step).unwrap();
        if step == self.corrupt_step {
            let hit = self.client().chaos_corrupt_circuit(self.dst);
            h.record("fault", &format!("corrupt circuit hit={hit}"));
        }
        if step == RELOCATE_STEP {
            // Relocate the mover, then poke its OLD address: the broken
            // circuit forces an address fault, the forwarding lookup finds
            // the new incarnation, and the stale lease is invalidated — all
            // synchronously at this step's virtual instant.
            let moved = self
                .mover
                .take()
                .unwrap()
                .relocate_to(self.machines[0])
                .map_err(|e| e.error)?;
            self.mover = Some(moved);
            let res = self.client().send(
                self.mover_dst,
                &Ask {
                    n: 902,
                    body: String::new(),
                },
            );
            h.record(
                "fault",
                &format!("mover relocated; stale-send ok={}", res.is_ok()),
            );
        }
        let partitioned = step == self.partition_step;
        if partitioned {
            // The split is standing: a short-deadline untraced send must
            // dead-letter (the verdict, not the wall duration, is logged).
            let res = self.client().send_reliable(
                self.dst,
                &Ask {
                    n,
                    body: String::new(),
                },
                Duration::from_millis(600),
            );
            let verdict = if res.is_ok() { "acked" } else { "dead" };
            h.record("verdict", &format!("n={n} {verdict} (split)"));
            if res.is_ok() {
                self.acked.push(n);
            }
        } else if step == self.partition_step + 1 {
            // First healed step: an untraced re-warm send normalizes the
            // circuit before traced traffic resumes.
            let res = self.client().send_reliable(
                self.dst,
                &Ask {
                    n,
                    body: String::new(),
                },
                Duration::from_secs(8),
            );
            let verdict = if res.is_ok() { "acked" } else { "dead" };
            h.record("verdict", &format!("n={n} {verdict} (rewarm)"));
            if res.is_ok() {
                self.acked.push(n);
            }
        } else {
            let (_, trace) = self.client().send_reliable_traced(
                self.dst,
                &Ask {
                    n,
                    body: String::new(),
                },
                Duration::from_secs(8),
            )?;
            self.traced.push((n, trace));
            self.acked.push(n);
            h.record("verdict", &format!("n={n} acked (traced)"));
        }
        Ok(())
    }

    fn verify(&mut self, h: &mut SimHarness) -> ntcs::Result<()> {
        // Hop casts are asynchronous: poll until the total hop count across
        // our traces is quiet for a while, then record the chains.
        let monitor = self.monitor.as_ref().unwrap();
        let total = |traces: &[(u32, TraceId)]| -> usize {
            traces
                .iter()
                .map(|(_, t)| monitor.trace_chain(t.raw()).len())
                .sum()
        };
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut last = total(&self.traced);
        let mut quiet = 0;
        while quiet < 6 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(50));
            let now = total(&self.traced);
            quiet = if now == last { quiet + 1 } else { 0 };
            last = now;
        }
        for (n, trace) in &self.traced {
            let mut chain = monitor.trace_chain(trace.raw());
            // Two hops can carry the SAME virtual timestamp (the clock only
            // moves between steps), and their casts race to the monitor —
            // arrival order at equal timestamps is a wall-clock fact, not a
            // seed fact. Canonicalize ties by kind so the log records only
            // the deterministic part.
            chain.sort_by_key(|hop| (hop.timestamp_us, hop.kind, hop.module_name.clone()));
            let hops: Vec<String> = chain
                .iter()
                .map(|hop| format!("{}@{}us/{}", hop.kind, hop.timestamp_us, hop.module_name))
                .collect();
            h.record("hops", &format!("n={n} [{}]", hops.join(" ")));
        }
        // Exactly-once for every acknowledged message.
        let tally = self.tally.lock().clone();
        for n in &self.acked {
            assert_eq!(
                tally.get(n),
                Some(&1),
                "acked n={n} not delivered exactly once"
            );
        }
        let mut acked = self.acked.clone();
        acked.sort_unstable();
        h.record("tally", &format!("acked={acked:?}"));
        // The name-cache lease events (hit / miss / invalidate) are seed
        // facts too: which resolutions hit a lease, which went cold, and
        // which entries the corruption fault invalidated. A wall-clock-
        // bounded retry loop may repeat one (kind, peer, aux) tuple at the
        // same virtual instant a run-dependent number of times, so the log
        // records first appearances only — the deterministic projection.
        let mut seen = std::collections::HashSet::new();
        for ev in self.client().nucleus().recorder().events() {
            if !(ntcs::event_kind::CACHE_HIT..=ntcs::event_kind::CACHE_INVALIDATE)
                .contains(&ev.kind)
            {
                continue;
            }
            if seen.insert((ev.kind, ev.timestamp_us, ev.peer, ev.aux)) {
                h.record(
                    "cache",
                    &format!(
                        "{}@{}us peer={:#x} aux={}",
                        ntcs::event_kind::name(ev.kind),
                        ev.timestamp_us,
                        ev.peer,
                        ev.aux
                    ),
                );
            }
        }
        // Consume one draw so the log also proves the workload stream
        // itself replays (the value is seed-derived, wall-independent).
        let stamp = self.rng.next_u64();
        h.record("tally", &format!("rng_stamp={stamp:#x}"));
        self.stop.store(true, Ordering::SeqCst);
        if let Some(p) = self.pump.take() {
            let _ = p.join();
        }
        Ok(())
    }
}

/// One full seeded run; returns the event log and the hop-record lines.
fn run_once(seed: u64) -> (EventLog, Vec<String>) {
    let config = SimConfig {
        steps: 9,
        ..SimConfig::with_seed(seed)
    };
    let rng = SimRng::new(seed);

    let mut tb = Simulation::builder();
    let net = tb.add_network(ntcs::NetKind::Mbx, "det-lan");
    let machines: Vec<_> = (0..3)
        .map(|i| {
            tb.add_machine(
                [MachineType::Sun, MachineType::Vax, MachineType::M68k][i],
                &format!("det{i}"),
                &[net],
            )
            .unwrap()
        })
        .collect();
    tb.name_server_on(machines[0]);
    let testbed = tb.start().unwrap();

    let mut topo = Topology::new();
    let east = topo.add_datacenter("east");
    let west = topo.add_datacenter("west");
    topo.place(east, machines[0]);
    topo.place(east, machines[1]);
    topo.place(west, machines[2]);

    let mut harness = SimHarness::new(testbed, topo);
    let mut faults = PlannedFaults::plan(&rng, net, east, west);
    let mut workload = SeededTraffic::new(&rng, machines, faults.partition_step);
    let log = Simulation::new(config)
        .run(&mut harness, &mut workload, &mut faults)
        .unwrap();
    let hops = log
        .lines()
        .iter()
        .filter(|l| l.contains(" hops: "))
        .cloned()
        .collect();
    (log, hops)
}

#[test]
fn same_seed_replays_byte_identically() {
    let seed = 0x5EED_0001;
    let (a, hops_a) = run_once(seed);
    let (b, hops_b) = run_once(seed);
    assert!(
        !hops_a.is_empty(),
        "the run must produce hop records to compare"
    );
    assert_eq!(
        hops_a, hops_b,
        "same seed must reassemble identical hop-record sequences"
    );
    assert_eq!(
        a.render(),
        b.render(),
        "same seed must produce a byte-identical event log"
    );
    assert_eq!(a.digest(), b.digest());
}

#[test]
fn cache_events_replay_byte_identically() {
    // The leased name cache's flight-recorder events — hits, misses, and
    // the invalidations forced by the mid-run circuit corruption — must be
    // byte-identical between two runs of the same seed, faults and all.
    let seed = 0xCAC4_E5EED;
    let cache_lines = |log: &EventLog| -> Vec<String> {
        log.lines()
            .iter()
            .filter(|l| l.contains(" cache: "))
            .cloned()
            .collect()
    };
    let (a, _) = run_once(seed);
    let (b, _) = run_once(seed);
    let (ca, cb) = (cache_lines(&a), cache_lines(&b));
    assert!(
        ca.iter().any(|l| l.contains("cache-hit")),
        "the run must serve at least one lease: {ca:?}"
    );
    assert!(
        ca.iter().any(|l| l.contains("cache-miss")),
        "the run must resolve cold at least once: {ca:?}"
    );
    assert!(
        ca.iter().any(|l| l.contains("cache-invalidate")),
        "the corruption fault must invalidate a lease: {ca:?}"
    );
    assert_eq!(
        ca, cb,
        "same seed must record byte-identical cache lease events"
    );
}

/// One seeded run over a virtual-time co-location world: a client and a
/// service share the SHM fast path on `host`, the service relocates to
/// `remote` mid-conversation (forcing the SHM→TCP handoff), and the run
/// returns the client's SUBSTRATE flight-recorder events as the
/// first-appearance projection (a wall-clock-bounded retry may repeat a
/// tuple at one virtual instant a run-dependent number of times).
fn run_substrate_once(seed: u64) -> Vec<String> {
    let mut tb = Simulation::builder();
    let wire = tb.add_network(ntcs::NetKind::Tcp, "sub-wire");
    let (host, _shm) = tb
        .add_colocated_machine(MachineType::Sun, "sub-host", &[wire])
        .unwrap();
    let remote = tb
        .add_machine(MachineType::Vax, "sub-remote", &[wire])
        .unwrap();
    tb.name_server_on(host);
    let testbed = tb.start().unwrap();
    let vt = testbed.world().virtual_time().unwrap();
    let mut rng = SimRng::new(seed).fork("substrate");

    let handler: Handler = Box::new(|_commod, msg| {
        let _ = msg.decode::<Ask>();
    });
    let srv = ServiceHost::spawn(&testbed, host, "sub-srv", handler).unwrap();
    let client = testbed.module(host, "sub-cli").unwrap();
    let dst = client.locate("sub-srv").unwrap();

    // Seed-derived schedule: how many messages ride the SHM ring before
    // the relocation, and how far the virtual clock steps between sends.
    let pre = 2 + rng.next_u64() % 3;
    let quantum = 1_000 + (rng.next_u64() % 5) as i64 * 500;
    let mut n = 0u32;
    let mut send = |client: &ComMod| {
        vt.advance_us(quantum);
        client
            .send_reliable(
                dst,
                &Ask {
                    n,
                    body: String::new(),
                },
                Duration::from_secs(10),
            )
            .unwrap();
        n += 1;
    };
    for _ in 0..pre {
        send(&client);
    }
    vt.advance_us(quantum);
    srv.relocate(remote).unwrap();
    for _ in 0..2 {
        send(&client);
    }

    let mut seen = std::collections::HashSet::new();
    let mut lines = Vec::new();
    for ev in client.nucleus().recorder().events() {
        if ev.kind != ntcs::event_kind::SUBSTRATE {
            continue;
        }
        if seen.insert((ev.timestamp_us, ev.peer, ev.aux)) {
            lines.push(format!(
                "substrate@{}us peer={:#x} aux={:#x}",
                ev.timestamp_us, ev.peer, ev.aux
            ));
        }
    }
    lines
}

#[test]
fn substrate_events_replay_byte_identically() {
    // Substrate selection and the relocation handoff are seed facts: the
    // same seed must choose, fall back, and hand off at the same virtual
    // instants with the same aux codings, byte for byte.
    let seed = 0x5B57_0001;
    let a = run_substrate_once(seed);
    let b = run_substrate_once(seed);
    assert!(
        a.iter().any(|l| l.ends_with("aux=0x1")),
        "the co-located circuit must select SHM: {a:?}"
    );
    assert!(
        a.iter().any(|l| {
            l.rsplit("aux=")
                .next()
                .and_then(|h| u64::from_str_radix(h.trim_start_matches("0x"), 16).ok())
                .is_some_and(|aux| aux >= 0x100)
        }),
        "the relocation must record a handoff-encoded event: {a:?}"
    );
    assert_eq!(
        a, b,
        "same seed must record byte-identical substrate events"
    );
}

#[test]
fn virtual_timestamps_are_schedule_times() {
    // Every recorded timestamp must sit exactly on a step boundary of the
    // virtual clock — the driver is the only thing that advances time.
    let (log, _) = run_once(0x0BAD_CAFE);
    let quantum = SimConfig::default().quantum_us;
    for line in log.lines() {
        let t: i64 = line
            .split("t_us=")
            .nth(1)
            .and_then(|r| r.split(' ').next())
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(
            t % quantum,
            0,
            "timestamp {t} is not a multiple of the step quantum: {line}"
        );
    }
}
