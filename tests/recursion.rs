//! Experiments E8 and E9 (§6): recursion in the NTCS.
//!
//! E8 reproduces the §6.1 first-send scenario and measures its message
//! amplification and recursion depth. E9 reproduces the §6.3 pathology: a
//! broken Name-Server circuit makes the unpatched LCM address-fault handler
//! recurse through the NSP layer "until either the stack overflows, or the
//! connection can be reestablished" — and shows the shipped patch bounding
//! it.

use std::sync::Arc;
use std::time::Duration;

use ntcs::{ComMod, Layer, NetKind, NtcsError, NucleusConfig, UAdd};
use ntcs_drts::{DrtsRuntime, MonitorService, TimeService};
use ntcs_repro::messages::{Answer, Ask};
use ntcs_repro::scenarios::{single_net, SingleNet};

const T: Option<Duration> = Some(Duration::from_secs(10));

#[test]
fn first_send_triggers_recursive_layer_activity() {
    let lab = single_net(3, NetKind::Mbx).unwrap();
    let ts = TimeService::spawn(&lab.testbed, lab.machines[0]).unwrap();
    let monitor = MonitorService::spawn(&lab.testbed, lab.machines[0]).unwrap();
    let server = lab.testbed.module(lab.machines[2], "echo").unwrap();
    let server_thread = std::thread::spawn(move || {
        let m = server.receive(T).unwrap();
        let a: Ask = m.decode().unwrap();
        server
            .reply(
                &m,
                &Answer {
                    n: a.n,
                    body: String::new(),
                },
            )
            .unwrap();
    });

    let client = Arc::new(lab.testbed.module(lab.machines[1], "instrumented").unwrap());
    let _rt = DrtsRuntime::attach(
        &client,
        Some(ts.uadd()),
        Some(monitor.uadd()),
        Duration::from_secs(3600),
    );
    client.trace().clear();

    let dst = client.locate("echo").unwrap();
    let reply = client
        .send_receive(
            dst,
            &Ask {
                n: 5,
                body: String::new(),
            },
            T,
        )
        .unwrap();
    assert_eq!(reply.decode::<Answer>().unwrap().n, 5);
    server_thread.join().unwrap();

    // The trace shows the §6.1 shape: LCM sends nested with NSP lookups.
    let events = client.trace().events();
    let lcm_sends = events
        .iter()
        .filter(|e| e.layer == Layer::Lcm && e.action == "send")
        .count();
    let nsp_lookups = events
        .iter()
        .filter(|e| e.layer == Layer::Nsp && e.action == "lookup")
        .count();
    assert!(
        lcm_sends >= 3,
        "time + payload + monitor sends, saw {lcm_sends}"
    );
    assert!(nsp_lookups >= 1, "resolution recursed through NSP");
    // Depth really exceeded 1: some send happened while another was live.
    let max_depth = events.iter().map(|e| e.depth).max().unwrap_or(0);
    assert!(max_depth >= 2, "max recursion depth {max_depth}");
    assert!(client.nucleus().gauge().max_seen() >= 2);
    monitor.stop();
    ts.stop();
}

/// Builds a module whose Nucleus has a tight recursion budget and an
/// optional §6.3 patch, bound to `lab` machine 1.
fn fault_prone_module(lab: &SingleNet, patched: bool) -> ComMod {
    let mut config = NucleusConfig::new(lab.machines[1], "fragile");
    config.well_known = lab.testbed.ns_well_known();
    config.max_recursion_depth = 16;
    config.open_retries = 0;
    config.ns_fault_patch = patched;
    ComMod::bind_with_config(lab.testbed.world(), config, lab.testbed.ns_servers()).unwrap()
}

#[test]
fn unpatched_ns_fault_recurses_to_the_guard() {
    // §6.3 verbatim: the circuit to the Name Server breaks; the next naming
    // exchange faults; the (unpatched) fault handler queries the NSP layer
    // about the Name Server's own UAdd, which talks to the Name Server, …
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let module = fault_prone_module(&lab, false);
    module.register("fragile").unwrap();

    // Break the Name-Server circuit: partition the module from the server's
    // machine. (The paper's trigger was exactly a broken NS virtual
    // circuit.)
    lab.testbed
        .world()
        .set_partition(lab.machines[0], lab.machines[1], true);
    std::thread::sleep(Duration::from_millis(100));

    let err = module.locate("fragile").unwrap_err();
    assert!(
        matches!(err, NtcsError::RecursionLimit { .. }),
        "expected the stack-overflow stand-in, got: {err}"
    );
    assert!(
        module.nucleus().gauge().max_seen() >= 15,
        "recursion should have climbed to the limit, max {}",
        module.nucleus().gauge().max_seen()
    );
}

#[test]
fn patched_ns_fault_stays_shallow_and_recovers() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let module = fault_prone_module(&lab, true);
    module.register("fragile").unwrap();
    module.nucleus().gauge().reset_max();

    lab.testbed
        .world()
        .set_partition(lab.machines[0], lab.machines[1], true);
    std::thread::sleep(Duration::from_millis(100));

    // Bounded failure, no runaway.
    let err = module.locate("fragile").unwrap_err();
    assert!(
        !matches!(err, NtcsError::RecursionLimit { .. }),
        "the patch must prevent the runaway, got: {err}"
    );
    assert!(
        module.nucleus().gauge().max_seen() <= 4,
        "patched fault handling stayed shallow, max {}",
        module.nucleus().gauge().max_seen()
    );

    // Heal the partition: "until … the connection can be reestablished."
    lab.testbed
        .world()
        .set_partition(lab.machines[0], lab.machines[1], false);
    let found = module.locate("fragile").unwrap();
    assert_eq!(found, module.my_uadd());
}

#[test]
fn recursion_guard_reports_depth() {
    // Direct unit-style check of the guard through the public API.
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let module = lab.testbed.module(lab.machines[1], "gauge").unwrap();
    let before = module.nucleus().gauge().max_seen();
    let _ = module.locate("gauge").unwrap();
    assert!(module.nucleus().gauge().max_seen() >= before);
    assert_eq!(module.nucleus().gauge().depth(), 0, "all scopes unwound");
}

#[test]
fn trace_selectivity_silences_chosen_layers() {
    // §6.2: "adequate selectivity in observing this information is equally
    // important."
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let module = lab.testbed.module(lab.machines[1], "selective").unwrap();
    module.trace().clear();
    module.trace().set_layer_enabled(Layer::Nd, false);
    let _ = module.locate("selective").unwrap();
    let events = module.trace().events();
    assert!(events.iter().all(|e| e.layer != Layer::Nd));
    assert!(events.iter().any(|e| e.layer == Layer::Lcm));
    // Re-enable and observe ND events again.
    module.trace().set_layer_enabled(Layer::Nd, true);
    module.trace().clear();
    let peer = lab.testbed.module(lab.machines[0], "peer").unwrap();
    let dst = module.locate("peer").unwrap();
    module
        .send(
            dst,
            &Ask {
                n: 0,
                body: String::new(),
            },
        )
        .unwrap();
    peer.receive(T).unwrap();
    assert!(module.trace().events().iter().any(|e| e.layer == Layer::Nd));
}

#[test]
fn name_server_address_is_protocol_constant() {
    assert_eq!(UAdd::NAME_SERVER.raw(), 1);
}
