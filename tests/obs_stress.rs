//! Concurrency stress tests for the observability primitives: the
//! lock-free [`Histogram`] and the [`MetricsRegistry`] aggregator.
//!
//! The histogram is recorded into from the LCM hot path by every
//! in-flight send, so its invariants must hold under real contention:
//! no lost updates (count == N×M), no miscounted buckets (bucket sum ==
//! count), and aggregates that match the recorded values exactly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use ntcs::{Histogram, MetricsRegistry, ModuleReport};

const THREADS: usize = 8;
const RECORDS_PER_THREAD: usize = 20_000;

/// The deterministic value thread `t` records on iteration `i` — spans
/// several log₂ buckets so the bucket-sum invariant is non-trivial.
fn value_for(t: usize, i: usize) -> i64 {
    ((t * 7 + i * 13) % 100_000) as i64
}

#[test]
fn histogram_loses_no_updates_under_contention() {
    let hist = Arc::new(Histogram::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let hist = Arc::clone(&hist);
        handles.push(thread::spawn(move || {
            for i in 0..RECORDS_PER_THREAD {
                hist.record_us(value_for(t, i));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let snap = hist.snapshot();
    let total = (THREADS * RECORDS_PER_THREAD) as u64;
    assert_eq!(snap.count, total, "every record must land exactly once");
    let bucket_sum: u64 = snap.buckets.iter().sum();
    assert_eq!(
        bucket_sum, total,
        "bucket counts must account for every observation"
    );

    // Aggregates match an exact serial replay of the same values.
    let mut expected_sum = 0u64;
    let mut expected_min = u64::MAX;
    let mut expected_max = 0u64;
    for t in 0..THREADS {
        for i in 0..RECORDS_PER_THREAD {
            let v = value_for(t, i) as u64;
            expected_sum += v;
            expected_min = expected_min.min(v);
            expected_max = expected_max.max(v);
        }
    }
    assert_eq!(snap.sum, expected_sum);
    assert_eq!(snap.min, expected_min);
    assert_eq!(snap.max, expected_max);

    // Each bucket holds exactly the values whose bit length selects it.
    let mut expected_buckets = [0u64; ntcs_nucleus::HISTOGRAM_BUCKETS];
    for t in 0..THREADS {
        for i in 0..RECORDS_PER_THREAD {
            expected_buckets[Histogram::bucket_index(value_for(t, i) as u64)] += 1;
        }
    }
    assert_eq!(snap.buckets, expected_buckets);
}

#[test]
fn histogram_snapshots_are_monotone_while_writers_run() {
    let hist = Arc::new(Histogram::new());
    let done = Arc::new(AtomicBool::new(false));

    // A reader thread snapshots continuously: per-atomic modification
    // order guarantees the count and every bucket never appear to move
    // backwards, even mid-record.
    let reader = {
        let hist = Arc::clone(&hist);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut last_count = 0u64;
            let mut last_buckets = [0u64; ntcs_nucleus::HISTOGRAM_BUCKETS];
            let mut observed = 0usize;
            while !done.load(Ordering::Acquire) {
                let snap = hist.snapshot();
                assert!(snap.count >= last_count, "count went backwards");
                for (i, (&now, &before)) in snap.buckets.iter().zip(&last_buckets).enumerate() {
                    assert!(now >= before, "bucket {i} went backwards");
                }
                last_count = snap.count;
                last_buckets = snap.buckets;
                observed += 1;
            }
            observed
        })
    };

    let mut writers = Vec::new();
    for t in 0..THREADS {
        let hist = Arc::clone(&hist);
        writers.push(thread::spawn(move || {
            for i in 0..RECORDS_PER_THREAD {
                hist.record_us(value_for(t, i));
            }
        }));
    }
    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Release);
    let observed = reader.join().unwrap();
    assert!(observed > 0, "reader must have raced at least one snapshot");
    assert_eq!(hist.snapshot().count, (THREADS * RECORDS_PER_THREAD) as u64);
}

#[test]
fn registry_survives_concurrent_register_and_render() {
    let registry = Arc::new(MetricsRegistry::new());
    let hist = Arc::new(Histogram::new());
    let done = Arc::new(AtomicBool::new(false));
    const MODULES_PER_THREAD: usize = 16;

    // Render continuously while registration and recording race on.
    let renderer = {
        let registry = Arc::clone(&registry);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut last_reports = 0usize;
            while !done.load(Ordering::Acquire) {
                let text = registry.render_prometheus();
                // Renders are well-formed at every instant: each exposed
                // metric line belongs to a declared # TYPE family.
                for line in text.lines().filter(|l| l.starts_with("ntcs_")) {
                    assert!(
                        text.lines().any(|t| {
                            t.starts_with("# TYPE ")
                                && line.starts_with(t.split_whitespace().nth(2).unwrap())
                        }),
                        "undeclared metric line: {line}"
                    );
                }
                let n = registry.reports().len();
                assert!(n >= last_reports, "registered sources disappeared");
                last_reports = n;
            }
        })
    };

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let registry = Arc::clone(&registry);
        let hist = Arc::clone(&hist);
        handles.push(thread::spawn(move || {
            for m in 0..MODULES_PER_THREAD {
                let source_hist = Arc::clone(&hist);
                let name = format!("stress-{t}-{m}");
                registry.register(Box::new(move || ModuleReport {
                    module: name.clone(),
                    counters: vec![("stress_ops", 1)],
                    gauges: vec![],
                    histograms: vec![("stress_us", source_hist.snapshot())],
                    breakers: vec![],
                }));
                for i in 0..200 {
                    hist.record_us(value_for(t, i));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    done.store(true, Ordering::Release);
    renderer.join().unwrap();

    let reports = registry.reports();
    assert_eq!(reports.len(), THREADS * MODULES_PER_THREAD);
    let text = registry.render_prometheus();
    assert!(text.contains("# TYPE ntcs_stress_ops_total counter"));
    assert!(text.contains("# TYPE ntcs_stress_us histogram"));
    // Every registered module appears in the final export.
    for t in 0..THREADS {
        for m in 0..MODULES_PER_THREAD {
            assert!(
                text.contains(&format!("module=\"stress-{t}-{m}\"")),
                "module stress-{t}-{m} missing from export"
            );
        }
    }
    // The shared histogram aggregated every record from every module.
    let snap = hist.snapshot();
    assert_eq!(snap.count, (THREADS * MODULES_PER_THREAD * 200) as u64);
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
}
