//! Concurrency stress tests for the observability primitives: the
//! lock-free [`Histogram`], the [`MetricsRegistry`] aggregator, and the
//! [`FlightRecorder`] ring buffer.
//!
//! The histogram and recorder are written from the LCM hot path by every
//! in-flight send, so their invariants must hold under real contention:
//! no lost updates (count == N×M), no miscounted buckets (bucket sum ==
//! count), no torn events, monotone sequence numbers, and bounded memory.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ntcs::{
    event_kind, ntcs_message, render_module_snapshot_json, FlightRecorder, Histogram, MachineType,
    MetricsRegistry, ModuleReport, NetKind, SimClock, TestbedBuilder,
};
use ntcs_ipcs::VirtualTime;

const THREADS: usize = 8;
const RECORDS_PER_THREAD: usize = 20_000;

/// The deterministic value thread `t` records on iteration `i` — spans
/// several log₂ buckets so the bucket-sum invariant is non-trivial.
fn value_for(t: usize, i: usize) -> i64 {
    ((t * 7 + i * 13) % 100_000) as i64
}

#[test]
fn histogram_loses_no_updates_under_contention() {
    let hist = Arc::new(Histogram::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let hist = Arc::clone(&hist);
        handles.push(thread::spawn(move || {
            for i in 0..RECORDS_PER_THREAD {
                hist.record_us(value_for(t, i));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let snap = hist.snapshot();
    let total = (THREADS * RECORDS_PER_THREAD) as u64;
    assert_eq!(snap.count, total, "every record must land exactly once");
    let bucket_sum: u64 = snap.buckets.iter().sum();
    assert_eq!(
        bucket_sum, total,
        "bucket counts must account for every observation"
    );

    // Aggregates match an exact serial replay of the same values.
    let mut expected_sum = 0u64;
    let mut expected_min = u64::MAX;
    let mut expected_max = 0u64;
    for t in 0..THREADS {
        for i in 0..RECORDS_PER_THREAD {
            let v = value_for(t, i) as u64;
            expected_sum += v;
            expected_min = expected_min.min(v);
            expected_max = expected_max.max(v);
        }
    }
    assert_eq!(snap.sum, expected_sum);
    assert_eq!(snap.min, expected_min);
    assert_eq!(snap.max, expected_max);

    // Each bucket holds exactly the values whose bit length selects it.
    let mut expected_buckets = [0u64; ntcs_nucleus::HISTOGRAM_BUCKETS];
    for t in 0..THREADS {
        for i in 0..RECORDS_PER_THREAD {
            expected_buckets[Histogram::bucket_index(value_for(t, i) as u64)] += 1;
        }
    }
    assert_eq!(snap.buckets, expected_buckets);
}

#[test]
fn histogram_snapshots_are_monotone_while_writers_run() {
    let hist = Arc::new(Histogram::new());
    let done = Arc::new(AtomicBool::new(false));

    // A reader thread snapshots continuously: per-atomic modification
    // order guarantees the count and every bucket never appear to move
    // backwards, even mid-record.
    let reader = {
        let hist = Arc::clone(&hist);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut last_count = 0u64;
            let mut last_buckets = [0u64; ntcs_nucleus::HISTOGRAM_BUCKETS];
            let mut observed = 0usize;
            while !done.load(Ordering::Acquire) {
                let snap = hist.snapshot();
                assert!(snap.count >= last_count, "count went backwards");
                for (i, (&now, &before)) in snap.buckets.iter().zip(&last_buckets).enumerate() {
                    assert!(now >= before, "bucket {i} went backwards");
                }
                last_count = snap.count;
                last_buckets = snap.buckets;
                observed += 1;
            }
            observed
        })
    };

    let mut writers = Vec::new();
    for t in 0..THREADS {
        let hist = Arc::clone(&hist);
        writers.push(thread::spawn(move || {
            for i in 0..RECORDS_PER_THREAD {
                hist.record_us(value_for(t, i));
            }
        }));
    }
    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Release);
    let observed = reader.join().unwrap();
    assert!(observed > 0, "reader must have raced at least one snapshot");
    assert_eq!(hist.snapshot().count, (THREADS * RECORDS_PER_THREAD) as u64);
}

#[test]
fn registry_survives_concurrent_register_and_render() {
    let registry = Arc::new(MetricsRegistry::new());
    let hist = Arc::new(Histogram::new());
    let done = Arc::new(AtomicBool::new(false));
    const MODULES_PER_THREAD: usize = 16;

    // Render continuously while registration and recording race on.
    let renderer = {
        let registry = Arc::clone(&registry);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut last_reports = 0usize;
            while !done.load(Ordering::Acquire) {
                let text = registry.render_prometheus();
                // Renders are well-formed at every instant: each exposed
                // metric line belongs to a declared # TYPE family.
                for line in text.lines().filter(|l| l.starts_with("ntcs_")) {
                    assert!(
                        text.lines().any(|t| {
                            t.starts_with("# TYPE ")
                                && line.starts_with(t.split_whitespace().nth(2).unwrap())
                        }),
                        "undeclared metric line: {line}"
                    );
                }
                let n = registry.reports().len();
                assert!(n >= last_reports, "registered sources disappeared");
                last_reports = n;
            }
        })
    };

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let registry = Arc::clone(&registry);
        let hist = Arc::clone(&hist);
        handles.push(thread::spawn(move || {
            for m in 0..MODULES_PER_THREAD {
                let source_hist = Arc::clone(&hist);
                let name = format!("stress-{t}-{m}");
                registry.register(Box::new(move || ModuleReport {
                    module: name.clone(),
                    counters: vec![("stress_ops", 1)],
                    gauges: vec![],
                    histograms: vec![("stress_us", source_hist.snapshot())],
                    breakers: vec![],
                    events: vec![],
                }));
                for i in 0..200 {
                    hist.record_us(value_for(t, i));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    done.store(true, Ordering::Release);
    renderer.join().unwrap();

    let reports = registry.reports();
    assert_eq!(reports.len(), THREADS * MODULES_PER_THREAD);
    let text = registry.render_prometheus();
    assert!(text.contains("# TYPE ntcs_stress_ops_total counter"));
    assert!(text.contains("# TYPE ntcs_stress_us histogram"));
    // Every registered module appears in the final export.
    for t in 0..THREADS {
        for m in 0..MODULES_PER_THREAD {
            assert!(
                text.contains(&format!("module=\"stress-{t}-{m}\"")),
                "module stress-{t}-{m} missing from export"
            );
        }
    }
    // The shared histogram aggregated every record from every module.
    let snap = hist.snapshot();
    assert_eq!(snap.count, (THREADS * MODULES_PER_THREAD * 200) as u64);
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
}

/// The aux word thread `t` stamps on iteration `i` — a checksum of the
/// other two payload words, so any torn read (fields from two different
/// writers) fails the invariant.
fn aux_for(peer: u64, msg_id: u64) -> u64 {
    peer * 1_000_003 + msg_id
}

#[test]
fn recorder_never_tears_events_under_contention() {
    // A ring far smaller than the write volume: every slot is lapped
    // hundreds of times, which is exactly where a torn read would show.
    const CAP: usize = 256;
    let clock = SimClock::new_virtual(Arc::new(VirtualTime::new()), 0, 0.0);
    let recorder = Arc::new(FlightRecorder::new(clock, CAP, 0));
    let done = Arc::new(AtomicBool::new(false));

    // A reader races the writers the whole time: every event it ever sees
    // must be internally consistent, and each tail() must come back in
    // strictly increasing sequence order.
    let reader = {
        let recorder = Arc::clone(&recorder);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let mut reads = 0usize;
            while !done.load(Ordering::Acquire) {
                let events = recorder.tail(64);
                for w in events.windows(2) {
                    assert!(w[0].seq < w[1].seq, "tail out of order or duplicated seq");
                }
                for ev in &events {
                    assert_eq!(ev.kind, event_kind::RETRY, "torn event: foreign kind");
                    assert_eq!(
                        ev.aux,
                        aux_for(ev.peer, ev.msg_id),
                        "torn event: fields from two writers"
                    );
                }
                reads += 1;
            }
            reads
        })
    };

    let mut writers = Vec::new();
    for t in 0..THREADS {
        let recorder = Arc::clone(&recorder);
        writers.push(thread::spawn(move || {
            for i in 0..RECORDS_PER_THREAD {
                let (peer, msg_id) = (t as u64, i as u64);
                // RETRY is a failure kind: never sampled out, so the
                // ticket count below is exact.
                recorder.record(event_kind::RETRY, peer, msg_id, aux_for(peer, msg_id));
            }
        }));
    }
    for w in writers {
        w.join().unwrap();
    }
    done.store(true, Ordering::Release);
    let reads = reader.join().unwrap();
    assert!(reads > 0, "reader must have raced at least one tail");

    let total = (THREADS * RECORDS_PER_THREAD) as u64;
    let events = recorder.events();
    // Bounded memory: the ring never holds more than its capacity,
    // no matter how much was written through it.
    assert_eq!(recorder.capacity(), CAP);
    assert!(events.len() <= CAP, "ring exceeded its capacity");
    assert!(!events.is_empty(), "quiescent ring must be readable");
    for w in events.windows(2) {
        assert!(
            w[0].seq < w[1].seq,
            "sequence numbers must be unique and monotone"
        );
    }
    for ev in &events {
        assert!(ev.seq < total, "sequence beyond the tickets ever issued");
        assert_eq!(ev.aux, aux_for(ev.peer, ev.msg_id), "torn event at rest");
    }
    // Accounting closes: every offered event was counted, and lapped
    // writers only ever drop their own event (never corrupt another's).
    assert_eq!(recorder.seen(event_kind::RETRY), total);
    assert!(recorder.lost() <= total);
}

ntcs_message! {
    /// Sequential probe for the determinism run below.
    pub struct ObsPing: 7300 { pub n: u64 }
}

/// One strictly sequential virtual-time run; returns the client and
/// server snapshot documents. Everything the snapshot contains —
/// counters, gauges, recorder events, timestamps — must be a pure
/// function of the workload when the clock is virtual.
fn deterministic_run() -> (String, String) {
    let mut tb = TestbedBuilder::new_virtual();
    let net = tb.add_network(NetKind::Mbx, "det");
    let m0 = tb.add_machine(MachineType::Sun, "det-a", &[net]).unwrap();
    let m1 = tb.add_machine(MachineType::Vax, "det-b", &[net]).unwrap();
    tb.name_server_on(m0);
    let testbed = tb.start().unwrap();

    let server = testbed.module(m0, "det-sink").unwrap();
    let client = testbed.module(m1, "det-src").unwrap();
    let dst = client.locate("det-sink").unwrap();
    for n in 0..32u64 {
        client.send(dst, &ObsPing { n }).unwrap();
        let msg = server.receive(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(msg.decode::<ObsPing>().unwrap().n, n);
    }
    let src = render_module_snapshot_json(&client.module_report());
    let sink = render_module_snapshot_json(&server.module_report());
    (src, sink)
}

#[test]
fn same_seed_virtual_runs_snapshot_identically() {
    let (first_src, first_sink) = deterministic_run();
    let (second_src, second_sink) = deterministic_run();
    assert_eq!(
        first_src, second_src,
        "client snapshots diverged across identical virtual-time runs"
    );
    assert_eq!(
        first_sink, second_sink,
        "server snapshots diverged across identical virtual-time runs"
    );

    // The crash-dump artifact path is deterministic too: dumping either
    // run produces the same bytes on disk.
    let path = ntcs::dump_snapshot("obs-stress-determinism", &first_src)
        .expect("dump_snapshot must succeed with a writable target/");
    let written = std::fs::read_to_string(&path).unwrap();
    assert_eq!(written, second_src);
}
