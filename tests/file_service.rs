//! The DRTS file service (§1.2): pathname-addressed storage by logical
//! name, from any machine — surviving relocation of the service itself.

use ntcs::{NetKind, NtcsError};
use ntcs_drts::files::FILE_SERVICE_NAME;
use ntcs_drts::{fs_append, fs_delete, fs_list, fs_read, fs_write, FileService};
use ntcs_repro::scenarios::{line_internet, single_net};

#[test]
fn write_read_list_delete() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let fs = FileService::spawn(&lab.testbed, lab.machines[0]).unwrap();
    let client = lab.testbed.module(lab.machines[1], "fs-user").unwrap();
    let fs_addr = client.locate(FILE_SERVICE_NAME).unwrap();
    assert_eq!(fs_addr, fs.uadd());

    fs_write(&client, fs_addr, "/etc/motd", b"welcome to URSA").unwrap();
    fs_write(&client, fs_addr, "/data/corpus/0001", b"retrieval systems").unwrap();
    fs_append(&client, fs_addr, "/etc/motd", b", traveller").unwrap();

    assert_eq!(
        fs_read(&client, fs_addr, "/etc/motd").unwrap(),
        b"welcome to URSA, traveller"
    );
    let listing = fs_list(&client, fs_addr, "/").unwrap();
    assert_eq!(listing.len(), 2);
    let under_data = fs_list(&client, fs_addr, "/data/").unwrap();
    assert_eq!(under_data.len(), 1);
    assert_eq!(under_data[0].0, "/data/corpus/0001");
    assert_eq!(under_data[0].1, 17);

    fs_delete(&client, fs_addr, "/etc/motd").unwrap();
    assert!(matches!(
        fs_read(&client, fs_addr, "/etc/motd"),
        Err(NtcsError::NameNotFound(_))
    ));
    assert!(matches!(
        fs_delete(&client, fs_addr, "/etc/motd"),
        Err(NtcsError::NameNotFound(_))
    ));
    assert_eq!(fs.file_count(), 1);
    fs.stop();
}

#[test]
fn empty_pathname_rejected() {
    let lab = single_net(1, NetKind::Mbx).unwrap();
    let fs = FileService::spawn(&lab.testbed, lab.machines[0]).unwrap();
    let client = lab.testbed.module(lab.machines[0], "u").unwrap();
    let err = fs_write(&client, fs.uadd(), "", b"x").unwrap_err();
    assert!(matches!(err, NtcsError::InvalidArgument(_)));
    fs.stop();
}

#[test]
fn files_survive_service_relocation() {
    let lab = single_net(3, NetKind::Mbx).unwrap();
    let fs = FileService::spawn(&lab.testbed, lab.machines[1]).unwrap();
    let client = lab.testbed.module(lab.machines[0], "fs-user").unwrap();
    let fs_addr = client.locate(FILE_SERVICE_NAME).unwrap();
    fs_write(&client, fs_addr, "/persistent", b"still here").unwrap();

    // Relocate the service; the store moves with its module, and the client
    // keeps using the OLD address.
    fs.host().relocate(lab.machines[2]).unwrap();
    assert_eq!(
        fs_read(&client, fs_addr, "/persistent").unwrap(),
        b"still here"
    );
    assert!(client.metrics().reconnects >= 1);
    fs.stop();
}

#[test]
fn file_service_across_gateways() {
    let lab = line_internet(2, NetKind::Mbx).unwrap();
    let fs = FileService::spawn(&lab.testbed, lab.edge_machines[1]).unwrap();
    let client = lab
        .testbed
        .module(lab.edge_machines[0], "remote-user")
        .unwrap();
    let fs_addr = client.locate(FILE_SERVICE_NAME).unwrap();
    fs_write(&client, fs_addr, "/remote/file", b"across networks").unwrap();
    assert_eq!(
        fs_read(&client, fs_addr, "/remote/file").unwrap(),
        b"across networks"
    );
    assert!(lab.gateways[0].metrics().circuits_spliced >= 1);
    fs.stop();
}

#[test]
fn concurrent_appenders_lose_nothing() {
    let lab = single_net(3, NetKind::Mbx).unwrap();
    let fs = FileService::spawn(&lab.testbed, lab.machines[0]).unwrap();
    let mut threads = Vec::new();
    for w in 0..4 {
        let testbed = &lab.testbed;
        let machine = lab.machines[1 + w % 2];
        let client = testbed.module(machine, &format!("writer-{w}")).unwrap();
        threads.push(std::thread::spawn(move || {
            let fs_addr = client.locate(FILE_SERVICE_NAME).unwrap();
            for _ in 0..20 {
                fs_append(&client, fs_addr, "/shared/log", b"x").unwrap();
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let reader = lab.testbed.module(lab.machines[1], "reader").unwrap();
    let data = fs_read(&reader, fs.uadd(), "/shared/log").unwrap();
    assert_eq!(data.len(), 80, "every append landed exactly once");
    fs.stop();
}
