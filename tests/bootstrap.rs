//! Experiment E1 (§3.4): TAdd bootstrap.
//!
//! "TAdds for any given module will be purged from all layers within the
//! first two communications with the Name Server, after which time the Name
//! Server will be referring to the module by its real UAdd."

use std::time::Duration;

use ntcs::{NetKind, UAdd};
use ntcs_repro::messages::{Answer, Ask};
use ntcs_repro::scenarios::{primed_internet, primed_module, single_net};

const T: Option<Duration> = Some(Duration::from_secs(10));

#[test]
fn module_starts_with_tadd_and_registration_assigns_uadd() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let c = lab.testbed.commod(lab.machines[1], "fresh").unwrap();
    assert!(c.my_uadd().is_temporary(), "pre-registration = TAdd");
    let u = c.register("fresh").unwrap();
    assert!(u.is_permanent());
    assert!(!u.is_well_known());
    assert_eq!(c.my_uadd(), u);
}

#[test]
fn tadds_purged_within_two_ns_communications() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let ns_nucleus = lab.testbed.name_server().unwrap().nucleus().clone();
    let c = lab.testbed.commod(lab.machines[1], "boot").unwrap();

    // Communication #1 with the Name Server: registration. The request
    // frame carries our TAdd, so the server tables briefly hold a (local
    // alias) TAdd.
    c.register("boot").unwrap();
    // Communication #2: any naming exchange now carries the real UAdd.
    let located = c.locate("boot").unwrap();
    assert_eq!(located, c.my_uadd());

    assert!(
        ns_nucleus.peer_table().iter().all(|u| u.is_permanent()),
        "name server still holds TAdds after two exchanges: {:?}",
        ns_nucleus.peer_table()
    );
    assert!(
        ns_nucleus.metrics().snapshot().tadd_purges >= 1,
        "the purge path must actually have run"
    );
    // And the client's own tables never hold anything temporary except its
    // (already replaced) self-address.
    assert!(c.my_uadd().is_permanent());
    assert!(c.nucleus().peer_table().iter().all(|u| u.is_permanent()));
}

#[test]
fn purge_happens_for_every_module_in_a_crowd() {
    let lab = single_net(3, NetKind::Mbx).unwrap();
    let ns_nucleus = lab.testbed.name_server().unwrap().nucleus().clone();
    let mut commods = Vec::new();
    for i in 0..6 {
        let c = lab
            .testbed
            .commod(lab.machines[1 + (i % 2)], &format!("crowd-{i}"))
            .unwrap();
        c.register(&format!("crowd-{i}")).unwrap();
        let _ = c.locate(&format!("crowd-{i}")).unwrap();
        commods.push(c);
    }
    assert!(ns_nucleus.peer_table().iter().all(|u| u.is_permanent()));
    assert!(ns_nucleus.metrics().snapshot().tadd_purges >= 6);
}

#[test]
fn tadd_sources_never_collide_at_the_receiver() {
    // Two unregistered modules (both using self-assigned TAdds, possibly
    // with the same numeric value) talk to the same server; the receiver's
    // local aliases keep them distinct (§3.4: "each Nucleus layer assigns
    // its own TAdd to each incoming connection from a TAdd source").
    let lab = single_net(3, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.machines[0], "mux").unwrap();
    let c1 = lab.testbed.commod(lab.machines[1], "anon1").unwrap();
    let c2 = lab.testbed.commod(lab.machines[2], "anon2").unwrap();
    let dst = server.my_uadd();
    // Both clients must resolve the server — they are unregistered, which is
    // fine: resource location does not require registration.
    let dst1 = c1.locate("mux").unwrap();
    let dst2 = c2.locate("mux").unwrap();
    assert_eq!(dst1, dst);
    assert_eq!(dst2, dst);

    c1.send(
        dst,
        &Ask {
            n: 1,
            body: "one".into(),
        },
    )
    .unwrap();
    c2.send(
        dst,
        &Ask {
            n: 2,
            body: "two".into(),
        },
    )
    .unwrap();
    let m1 = server.receive(T).unwrap();
    let m2 = server.receive(T).unwrap();
    assert!(m1.src().is_temporary() && m2.src().is_temporary());
    assert_ne!(m1.src(), m2.src(), "aliases must be distinct");

    // Replies flow back to the right anonymous client over their circuits.
    server
        .reply(
            &m1,
            &Answer {
                n: m1.decode::<Ask>().unwrap().n,
                body: "r1".into(),
            },
        )
        .unwrap();
    server
        .reply(
            &m2,
            &Answer {
                n: m2.decode::<Ask>().unwrap().n,
                body: "r2".into(),
            },
        )
        .unwrap();
    let r1 = c1.receive(T).unwrap().decode::<Answer>().unwrap();
    let r2 = c2.receive(T).unwrap().decode::<Answer>().unwrap();
    assert_eq!(r1.n, 1);
    assert_eq!(r2.n, 2);
}

#[test]
fn prime_gateway_bootstrap_reaches_a_remote_name_server() {
    // §3.4: "a small number of 'well known' addresses are loaded into the
    // ComMod address tables … those of the Name Server and of certain
    // 'prime' gateways." Here the Name Server is two networks away and every
    // exchange — including registration itself — crosses the prime chain.
    let lab = primed_internet(3, NetKind::Mbx).unwrap();
    let far = primed_module(&lab, 2, "far-module").unwrap();
    assert!(far.my_uadd().is_permanent());
    let near = primed_module(&lab, 0, "near-module").unwrap();
    let found = near.locate("far-module").unwrap();
    assert_eq!(found, far.my_uadd());

    // And application traffic then flows across the same chain.
    near.send(
        found,
        &Ask {
            n: 9,
            body: "primed".into(),
        },
    )
    .unwrap();
    let got = far.receive(T).unwrap();
    assert_eq!(got.decode::<Ask>().unwrap().n, 9);
    assert!(lab.gateways[0].metrics().circuits_spliced >= 1);
    assert!(lab.gateways[1].metrics().circuits_spliced >= 1);
}

#[test]
fn well_known_addresses_are_reserved() {
    assert!(UAdd::NAME_SERVER.is_well_known());
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let c = lab.testbed.module(lab.machines[1], "plain").unwrap();
    assert!(
        !c.my_uadd().is_well_known(),
        "dynamic UAdds stay clear of the reserved block"
    );
}
