//! The seed-sweep harness: run the chaos scenarios and the fault-matrix
//! cells across many seeds, report every failing seed, and make any
//! failure replayable bit-identically.
//!
//! Environment contract (all optional):
//!
//! - `NTCS_SWEEP_SEEDS=N` — number of seeds to sweep (default: 1 smoke
//!   seed here; the three classic seeds already run in `tests/chaos.rs`).
//!   CI's `seed-sweep` job sets this to ≥ 100.
//! - `NTCS_SWEEP_BASE=0xHEX` — make the FIRST seed exactly this value, so
//!   `NTCS_SWEEP_SEEDS=1 NTCS_SWEEP_BASE=0x<failing>` replays one seed.
//! - `NTCS_SWEEP_QUICK=1` — quick mode for wide CI sweeps: the heavyweight
//!   chaos scenarios cap at 4 seeds and the per-seed work shifts to the
//!   (much cheaper) rotating fault-matrix cells.
//! - `NTCS_SWEEP_ARTIFACT=path` — on failure, write the failing-seed list
//!   there (one `scenario= seed= msg=` line per failure) for CI upload.
//!
//! A failing fault-matrix cell additionally dumps the cell's cluster
//! flight-recorder snapshot to `target/obs/cell-<fault>-<layer>-<seed>.json`
//! (CI uploads those next to the failing-seed list), so a red sweep ships
//! the wedged queue/circuit evidence along with the repro recipe.

use std::time::Duration;

use ntcs_repro::chaos::{
    gateway_drop_chaos, ns_replica_kill, partition_heal_chaos, slow_consumer_backpressure,
};
use ntcs_sim::{cells, expected, run_cell, seed_list, sweep, SweepReport};

/// Both sweeps build real multi-machine testbeds with wall-clock deadlines
/// inside; run one sweep at a time.
static SWEEP_SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn quick_mode() -> bool {
    std::env::var("NTCS_SWEEP_QUICK").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// With no sweep environment at all this is a smoke test: one classic seed
/// (the other two already run per-scenario in `tests/chaos.rs`). Any env
/// var opts into the full [`seed_list`] contract.
fn configured_seeds() -> Vec<u64> {
    if std::env::var("NTCS_SWEEP_SEEDS").is_err() && std::env::var("NTCS_SWEEP_BASE").is_err() {
        return vec![ntcs_sim::CLASSIC_SEEDS[0]];
    }
    seed_list()
}

fn finish(report: &SweepReport) {
    println!("{}", report.summary());
    match report.write_artifact() {
        Ok(Some(path)) => println!("failing-seed artifact written to {path}"),
        Ok(None) => {}
        Err(e) => eprintln!("could not write failing-seed artifact: {e}"),
    }
    assert!(report.is_clean(), "\n{}", report.summary());
}

#[test]
fn chaos_scenarios_sweep() {
    let _serial = SWEEP_SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut seeds = configured_seeds();
    if quick_mode() {
        // Wide CI sweeps spend their seed budget on matrix cells below;
        // the full chaos scenarios stay at a representative handful.
        seeds.truncate(4);
    }
    let scenarios: &[(&str, &(dyn Fn(u64) + Sync))] = &[
        ("partition_heal", &partition_heal_chaos),
        ("ns_replica_kill", &ns_replica_kill),
        ("gateway_drop", &gateway_drop_chaos),
        ("slow_consumer_backpressure", &slow_consumer_backpressure),
    ];
    finish(&sweep(scenarios, &seeds));
}

#[test]
fn fault_matrix_cells_sweep() {
    let _serial = SWEEP_SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let seeds = configured_seeds();
    // Each seed exercises one matrix cell, rotating through all of them as
    // the seed list grows — a 100-seed CI sweep covers every cell ~10
    // times at distinct seeds, asserting the expected-verdict contract
    // (and hang-freedom: the watchdog turns overruns into Hung, which no
    // expected set accepts).
    let rotating = |seed: u64| {
        let all = cells();
        let (fault, layer) = all[usize::try_from(seed % all.len() as u64).unwrap()];
        let out = run_cell(fault, layer, seed, Duration::from_secs(30));
        let dump = out
            .dump
            .as_ref()
            .map(|p| format!(" (snapshot: {})", p.display()))
            .unwrap_or_default();
        assert!(
            out.acceptable(),
            "cell ({fault}, {layer}): verdict {} not in {:?}: {}{dump}",
            out.verdict,
            expected(fault, layer),
            out.detail
        );
    };
    let scenarios: &[(&str, &(dyn Fn(u64) + Sync))] = &[("matrix_cell", &rotating)];
    finish(&sweep(scenarios, &seeds));
}
