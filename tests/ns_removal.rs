//! Experiment E2 (§3.3): "once all necessary addresses have been resolved
//! (e.g., after the system has been heavily used for a while), the Name
//! Server can be removed with no consequence, unless the system is
//! reconfigured."

use std::time::Duration;

use ntcs::{NetKind, NtcsError};
use ntcs_repro::messages::{Answer, Ask};
use ntcs_repro::scenarios::{line_internet, single_net};

const T: Option<Duration> = Some(Duration::from_secs(10));

#[test]
fn warm_caches_survive_name_server_removal() {
    let lab = single_net(3, NetKind::Mbx).unwrap();
    let mut testbed = lab.testbed;
    let s1 = testbed.module(lab.machines[1], "svc-1").unwrap();
    let s2 = testbed.module(lab.machines[2], "svc-2").unwrap();
    let client = testbed.module(lab.machines[0], "cli").unwrap();
    let d1 = client.locate("svc-1").unwrap();
    let d2 = client.locate("svc-2").unwrap();
    // Warm both paths.
    client
        .send(
            d1,
            &Ask {
                n: 0,
                body: String::new(),
            },
        )
        .unwrap();
    client
        .send(
            d2,
            &Ask {
                n: 0,
                body: String::new(),
            },
        )
        .unwrap();
    s1.receive(T).unwrap();
    s2.receive(T).unwrap();

    assert!(testbed.remove_name_server());

    // Heavy post-removal traffic: no consequence.
    for i in 1..=20u32 {
        client
            .send(
                d1,
                &Ask {
                    n: i,
                    body: String::new(),
                },
            )
            .unwrap();
        client
            .send(
                d2,
                &Ask {
                    n: i,
                    body: String::new(),
                },
            )
            .unwrap();
        assert_eq!(s1.receive(T).unwrap().decode::<Ask>().unwrap().n, i);
        assert_eq!(s2.receive(T).unwrap().decode::<Ask>().unwrap().n, i);
    }
    // Request/reply works too (reply path needs no naming).
    let s1_thread = std::thread::spawn(move || {
        let m = s1.receive(T).unwrap();
        s1.reply(
            &m,
            &Answer {
                n: 99,
                body: String::new(),
            },
        )
        .unwrap();
    });
    let r = client
        .send_receive(
            d1,
            &Ask {
                n: 21,
                body: String::new(),
            },
            T,
        )
        .unwrap();
    assert_eq!(r.decode::<Answer>().unwrap().n, 99);
    s1_thread.join().unwrap();
}

#[test]
fn removal_breaks_only_reconfiguration() {
    let lab = single_net(3, NetKind::Mbx).unwrap();
    let mut testbed = lab.testbed;
    let svc = testbed.module(lab.machines[1], "svc").unwrap();
    let client = testbed.module(lab.machines[0], "cli").unwrap();
    let dst = client.locate("svc").unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 0,
                body: String::new(),
            },
        )
        .unwrap();
    svc.receive(T).unwrap();

    assert!(testbed.remove_name_server());

    // "…unless the system is reconfigured": relocation needs the naming
    // service and must now fail loudly.
    let err = svc.relocate_to(lab.machines[2]).unwrap_err();
    let svc = err.commod;
    let err = err.error;
    assert!(
        matches!(
            err,
            NtcsError::NameServerUnreachable | NtcsError::Timeout | NtcsError::ConnectRefused(_)
        ),
        "{err}"
    );
    // New resolution fails as well.
    assert!(client.locate("svc").is_err());
    // Existing communication still fine.
    client
        .send(
            dst,
            &Ask {
                n: 1,
                body: String::new(),
            },
        )
        .unwrap();
    assert_eq!(svc.receive(T).unwrap().decode::<Ask>().unwrap().n, 1);
}

#[test]
fn established_gateway_chains_survive_removal() {
    let lab = line_internet(2, NetKind::Mbx).unwrap();
    let mut testbed = lab.testbed;
    let server = testbed.module(lab.edge_machines[1], "far").unwrap();
    let client = testbed.module(lab.edge_machines[0], "near").unwrap();
    let dst = client.locate("far").unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 0,
                body: String::new(),
            },
        )
        .unwrap();
    server.receive(T).unwrap();

    assert!(testbed.remove_name_server());
    // The spliced circuit needs no more routing decisions.
    for i in 1..=10u32 {
        client
            .send(
                dst,
                &Ask {
                    n: i,
                    body: String::new(),
                },
            )
            .unwrap();
        assert_eq!(server.receive(T).unwrap().decode::<Ask>().unwrap().n, i);
    }
}

#[test]
fn name_server_can_be_restarted() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let mut testbed = lab.testbed;
    let _svc = testbed.module(lab.machines[1], "svc").unwrap();
    assert!(testbed.remove_name_server());
    assert!(!testbed.remove_name_server(), "idempotent");
    testbed.restart_name_server(lab.machines[0]).unwrap();
    // The restarted server has an empty database: modules must re-register
    // (fresh modules work immediately).
    let fresh = testbed.module(lab.machines[0], "fresh").unwrap();
    assert_eq!(fresh.locate("fresh").unwrap(), fresh.my_uadd());
    assert!(fresh.locate("svc").is_err(), "old registrations are gone");
}
