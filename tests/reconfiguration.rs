//! Experiment E7 (§3.5, §4.3): dynamic reconfiguration.
//!
//! "This ability allows the system to be dynamically reconfigured, with the
//! communication automatically reaching the correct destination." Messages
//! *may* be dropped across a reconfiguration — the paper accepts that and
//! delegates stronger guarantees to transaction management; we measure the
//! loss instead of hiding it.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ntcs::{NetKind, NtcsError};
use ntcs_drts::host::Handler;
use ntcs_drts::ServiceHost;
use ntcs_repro::messages::{Answer, Ask};
use ntcs_repro::scenarios::{line_internet, single_net};

const T: Option<Duration> = Some(Duration::from_secs(10));

#[test]
fn relocation_mid_conversation_recovers_transparently() {
    let lab = single_net(3, NetKind::Mbx).unwrap();
    let received = Arc::new(AtomicU32::new(0));
    let rc = Arc::clone(&received);
    let handler: Handler = Box::new(move |commod, msg| {
        if let Ok(a) = msg.decode::<Ask>() {
            rc.fetch_add(1, Ordering::Relaxed);
            let _ = commod.reply(
                &msg,
                &Answer {
                    n: a.n,
                    body: String::new(),
                },
            );
        }
    });
    let host = ServiceHost::spawn(&lab.testbed, lab.machines[1], "mover", handler).unwrap();
    let client = lab.testbed.module(lab.machines[0], "talker").unwrap();
    let dst = client.locate("mover").unwrap();

    let mut answered = 0u32;
    let mut dropped = 0u32;
    for i in 0..30u32 {
        if i == 10 {
            host.relocate(lab.machines[2]).unwrap();
        }
        if i == 20 {
            host.relocate(lab.machines[1]).unwrap();
        }
        // Synchronous exchanges: each either completes or (rarely, if the
        // request raced the teardown) times out — never errors out, because
        // the LCM layer reconnects transparently.
        match client.send_receive(
            dst,
            &Ask {
                n: i,
                body: String::new(),
            },
            Some(Duration::from_secs(2)),
        ) {
            Ok(reply) => {
                assert_eq!(reply.decode::<Answer>().unwrap().n, i);
                answered += 1;
            }
            Err(NtcsError::Timeout) => dropped += 1,
            Err(e) => panic!("send {i} failed hard: {e}"),
        }
    }
    assert!(answered >= 27, "answered {answered}, dropped {dropped}");
    assert!(
        dropped <= 3,
        "dropped {dropped} exceeds the reconfiguration budget"
    );
    let m = client.metrics();
    assert!(
        m.address_faults >= 2,
        "two relocations ⇒ ≥2 faults, saw {}",
        m.address_faults
    );
    assert!(m.forward_queries >= 2);
    assert!(m.reconnects >= 2);
    host.stop();
}

#[test]
fn no_messages_lost_in_static_configuration() {
    // §3.5: "the NTCS can not lose messages in a static environment."
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.machines[1], "sink").unwrap();
    let client = lab.testbed.module(lab.machines[0], "hose").unwrap();
    let dst = client.locate("sink").unwrap();
    const N: u32 = 500;
    for i in 0..N {
        client
            .send(
                dst,
                &Ask {
                    n: i,
                    body: String::new(),
                },
            )
            .unwrap();
    }
    for i in 0..N {
        let m = server.receive(T).unwrap();
        assert_eq!(m.decode::<Ask>().unwrap().n, i, "order preserved too");
    }
}

#[test]
fn chained_relocations_follow_forwarding_chain() {
    let lab = single_net(4, NetKind::Mbx).unwrap();
    let handler: Handler = Box::new(|commod, msg| {
        if msg.decode::<Ask>().is_ok() {
            let _ = commod.reply(
                &msg,
                &Answer {
                    n: 0,
                    body: "here".into(),
                },
            );
        }
    });
    let host = ServiceHost::spawn(&lab.testbed, lab.machines[1], "nomad", handler).unwrap();
    let client = lab.testbed.module(lab.machines[0], "seeker").unwrap();
    let dst = client.locate("nomad").unwrap();
    // First contact, then two silent moves before the next send.
    client
        .send_receive(
            dst,
            &Ask {
                n: 0,
                body: String::new(),
            },
            T,
        )
        .unwrap();
    host.relocate(lab.machines[2]).unwrap();
    host.relocate(lab.machines[3]).unwrap();
    // The old UAdd is now two generations stale; the forwarding query finds
    // the newest incarnation directly (§3.5's "newer module").
    let reply = client
        .send_receive(
            dst,
            &Ask {
                n: 1,
                body: String::new(),
            },
            T,
        )
        .unwrap();
    assert_eq!(reply.decode::<Answer>().unwrap().body, "here");
    host.stop();
}

#[test]
fn relocation_across_networks_through_gateways() {
    // A module moves to a machine on a DIFFERENT network: the reconnect path
    // must obtain a gateway route it never needed before.
    let lab = line_internet(2, NetKind::Mbx).unwrap();
    let handler: Handler = Box::new(|commod, msg| {
        if let Ok(a) = msg.decode::<Ask>() {
            let _ = commod.reply(
                &msg,
                &Answer {
                    n: a.n + 100,
                    body: String::new(),
                },
            );
        }
    });
    // Server starts on the client's own network…
    let host = ServiceHost::spawn(&lab.testbed, lab.edge_machines[0], "roamer", handler).unwrap();
    let client = lab.testbed.module(lab.edge_machines[0], "caller").unwrap();
    let dst = client.locate("roamer").unwrap();
    let r = client
        .send_receive(
            dst,
            &Ask {
                n: 1,
                body: String::new(),
            },
            T,
        )
        .unwrap();
    assert_eq!(r.decode::<Answer>().unwrap().n, 101);
    assert_eq!(client.metrics().route_queries, 0);

    // …then moves to the far network.
    host.relocate(lab.edge_machines[1]).unwrap();
    let r = client
        .send_receive(
            dst,
            &Ask {
                n: 2,
                body: String::new(),
            },
            T,
        )
        .unwrap();
    assert_eq!(r.decode::<Answer>().unwrap().n, 102);
    assert!(
        client.metrics().route_queries >= 1,
        "reconnect crossed a gateway"
    );
    assert!(lab.gateways[0].metrics().circuits_spliced >= 1);
    host.stop();
}

#[test]
fn sender_relocation_keeps_conversations_alive() {
    // The *client* relocates: its UAdd changes; the server replies to
    // whatever address the next request carries. Conversations survive.
    let lab = single_net(3, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.machines[1], "fixed").unwrap();
    let server_thread = std::thread::spawn(move || {
        for _ in 0..2 {
            let m = server.receive(Some(Duration::from_secs(10))).unwrap();
            let a: Ask = m.decode().unwrap();
            server
                .reply(
                    &m,
                    &Answer {
                        n: a.n,
                        body: String::new(),
                    },
                )
                .unwrap();
        }
    });
    let client = lab.testbed.module(lab.machines[0], "mobile-cli").unwrap();
    let dst = client.locate("fixed").unwrap();
    let r = client
        .send_receive(
            dst,
            &Ask {
                n: 1,
                body: String::new(),
            },
            T,
        )
        .unwrap();
    assert_eq!(r.decode::<Answer>().unwrap().n, 1);

    let client = client.relocate_to(lab.machines[2]).unwrap();
    let r = client
        .send_receive(
            dst,
            &Ask {
                n: 2,
                body: String::new(),
            },
            T,
        )
        .unwrap();
    assert_eq!(r.decode::<Answer>().unwrap().n, 2);
    server_thread.join().unwrap();
}

#[test]
fn unregistered_module_cannot_relocate() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let c = lab.testbed.commod(lab.machines[0], "anon").unwrap();
    let err = c.relocate_to(lab.machines[1]).unwrap_err();
    assert!(matches!(err.error, NtcsError::NotRegistered));
    // The binding came back intact.
    assert!(err.commod.my_uadd().is_temporary());
}

#[test]
fn crash_without_replacement_returns_error() {
    // §3.5 first case: "no replacement module was located. … the call will
    // simply return with an error."
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.machines[1], "doomed").unwrap();
    let client = lab.testbed.module(lab.machines[0], "witness").unwrap();
    let dst = client.locate("doomed").unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 0,
                body: String::new(),
            },
        )
        .unwrap();
    server.receive(T).unwrap();
    lab.testbed.world().crash(lab.machines[1]);
    std::thread::sleep(Duration::from_millis(100));
    let err = client
        .send(
            dst,
            &Ask {
                n: 1,
                body: String::new(),
            },
        )
        .unwrap_err();
    assert!(
        err.is_relocation_candidate() || matches!(err, NtcsError::NoForwardingAddress(_)),
        "{err}"
    );
}

/// Regression: the metrics registry's report source must follow a module
/// across relocation. Before the fix, the source registered at bind time
/// captured the original Nucleus; after `relocate_to` the exported
/// `flow_credits_available` gauge froze at the dead incarnation's reading
/// (zero once its circuits closed) while the live module's window was
/// invisible to operators.
#[test]
fn registry_gauges_follow_module_across_relocation() {
    use ntcs::FlowSettings;

    let lab = single_net(3, NetKind::Mbx).unwrap();
    lab.testbed
        .enable_flow_control(FlowSettings::enabled(1024, 2));
    let server = lab.testbed.module(lab.machines[1], "gauge-fixed").unwrap();
    let client = lab.testbed.module(lab.machines[0], "gauge-src").unwrap();
    let dst = client.locate("gauge-fixed").unwrap();

    let credits_for = |name: &str| -> u64 {
        lab.testbed
            .registry()
            .reports()
            .into_iter()
            .find(|r| r.module == name)
            .and_then(|r| {
                r.gauges
                    .iter()
                    .find(|(g, _)| *g == "flow_credits_available")
                    .map(|&(_, v)| v)
            })
            .expect("gauge-src must stay in the registry with its flow gauge")
    };

    client
        .send(
            dst,
            &Ask {
                n: 0,
                body: String::new(),
            },
        )
        .unwrap();
    server.receive(T).unwrap();
    assert!(
        credits_for("gauge-src") > 0,
        "a live flow-enabled circuit must expose its window"
    );

    let client = client
        .relocate_to(lab.machines[2])
        .map_err(|e| e.error)
        .unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 1,
                body: String::new(),
            },
        )
        .unwrap();
    server.receive(T).unwrap();

    assert!(
        credits_for("gauge-src") > 0,
        "gauge went stale: the report source still reads the pre-relocation incarnation"
    );
}

/// A relocated module must keep its Nucleus configuration — in particular
/// credit-based flow control. Before the fix, `relocate_to` rebound with a
/// default config: the relocated receiver granted no credit, so a
/// flow-enabled sender starved against it once the initial window spent.
#[test]
fn relocation_preserves_flow_control() {
    use ntcs::FlowSettings;

    let lab = single_net(3, NetKind::Mbx).unwrap();
    lab.testbed
        .enable_flow_control(FlowSettings::enabled(1024, 2));
    let server = lab.testbed.module(lab.machines[1], "flow-reloc").unwrap();
    let client = lab.testbed.module(lab.machines[2], "flow-src").unwrap();
    let dst = client.locate("flow-reloc").unwrap();

    client
        .send(
            dst,
            &Ask {
                n: 0,
                body: String::new(),
            },
        )
        .unwrap();
    server.receive(T).unwrap();
    let server = server
        .relocate_to(lab.machines[0])
        .map_err(|e| e.error)
        .unwrap();
    assert!(
        server.nucleus_config().flow.enabled,
        "relocation must carry flow control to the new binding"
    );

    // Far more traffic than the 2-frame window: progress now depends on
    // the relocated receiver granting credit as it drains.
    let drainer = std::thread::spawn(move || {
        let mut got = 0u32;
        while server.receive(Some(Duration::from_millis(500))).is_ok() {
            got += 1;
        }
        got
    });
    let body = "x".repeat(200);
    for i in 1..=20u32 {
        client
            .send(
                dst,
                &Ask {
                    n: i,
                    body: body.clone(),
                },
            )
            .unwrap();
    }
    assert_eq!(drainer.join().unwrap(), 20);
}
