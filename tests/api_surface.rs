//! API-surface coverage: the ALI utilities and smaller public behaviours
//! not exercised by the scenario tests.

use std::time::Duration;

use ntcs::{AttrQuery, ConvMode, Layer, MachineType, NetKind, UAdd};
use ntcs_repro::messages::{Ask, Numbers};
use ntcs_repro::scenarios::single_net;

const T: Option<Duration> = Some(Duration::from_secs(5));

#[test]
fn ping_measures_liveness() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.machines[1], "pingee").unwrap();
    let client = lab.testbed.module(lab.machines[0], "pinger").unwrap();
    let dst = client.locate("pingee").unwrap();
    let t = std::thread::spawn(move || {
        // The pingee only needs to be pumping.
        let _ = server.receive(Some(Duration::from_millis(800)));
    });
    let rtt = client.ping(dst, T).unwrap();
    assert!(rtt > Duration::ZERO && rtt < Duration::from_secs(1));
    t.join().unwrap();
}

#[test]
fn incoming_accessors_are_coherent() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.machines[1], "accessors").unwrap();
    let client = lab.testbed.module(lab.machines[0], "sender").unwrap();
    let dst = client.locate("accessors").unwrap();
    let id = client
        .send(
            dst,
            &Ask {
                n: 3,
                body: "x".into(),
            },
        )
        .unwrap();
    let m = server.receive(T).unwrap();
    assert_eq!(m.msg_id(), id);
    assert_eq!(m.reply_to(), 0);
    assert!(!m.reply_expected());
    assert!(!m.connectionless());
    assert_eq!(m.src(), client.my_uadd());
    assert_eq!(m.type_id(), 3000); // Ask's declared type id
    assert!(m.is::<Ask>());
    assert!(!m.is::<Numbers>());
    // Decoding as the wrong type is a clean error.
    assert!(m.decode::<Numbers>().is_err());
    assert_eq!(m.decode::<Ask>().unwrap().n, 3);
}

#[test]
fn commod_introspection_utilities() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let c = lab.testbed.module(lab.machines[1], "introspect").unwrap();
    assert_eq!(c.machine(), lab.machines[1]);
    assert_eq!(c.machine_type(), MachineType::Vax); // cycle: Sun, Vax, …
    assert_eq!(c.networks(), vec![lab.net]);
    assert_eq!(c.name_hint(), "introspect");
    let attrs = c.registered_attrs().unwrap();
    assert_eq!(attrs.name(), Some("introspect"));
    // Trace utilities: clearing works, rendering is non-empty after traffic.
    c.trace().clear();
    let _ = c.locate("introspect").unwrap();
    assert!(!c.trace().events().is_empty());
    assert!(c.trace().render().contains("LCM"));
    c.trace().set_enabled(false);
    c.trace().clear();
    let _ = c.locate("introspect").unwrap();
    assert!(c.trace().events().is_empty());
}

#[test]
fn locate_query_and_list_are_consistent() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let a = lab.testbed.module(lab.machines[0], "member-a").unwrap();
    let b = lab.testbed.module(lab.machines[1], "member-b").unwrap();
    let q = AttrQuery::any().and_exists("name").unwrap();
    let all = a.list(&q).unwrap();
    assert!(all.contains(&a.my_uadd()));
    assert!(all.contains(&b.my_uadd()));
    // locate_query returns one of the listed modules.
    let one = a.locate_query(&q).unwrap();
    assert!(all.contains(&one));
}

#[test]
fn self_send_works() {
    // A module can message itself through the full stack (useful for
    // self-scheduling patterns).
    let lab = single_net(1, NetKind::Mbx).unwrap();
    let c = lab.testbed.module(lab.machines[0], "selfie").unwrap();
    let me = c.locate("selfie").unwrap();
    assert_eq!(me, c.my_uadd());
    c.send(
        me,
        &Ask {
            n: 1,
            body: "to myself".into(),
        },
    )
    .unwrap();
    let m = c.receive(T).unwrap();
    assert_eq!(m.decode::<Ask>().unwrap().body, "to myself");
    // Same-machine loopback is image mode (identical machine type).
    assert_eq!(m.raw().payload.mode, ConvMode::Image);
}

#[test]
fn layer_enum_is_complete_and_displayable() {
    for l in Layer::ALL {
        assert!(!l.to_string().is_empty());
    }
    assert_eq!(Layer::ALL.len(), 6);
}

#[test]
fn error_display_for_public_variants() {
    let lab = single_net(1, NetKind::Mbx).unwrap();
    let c = lab.testbed.module(lab.machines[0], "err").unwrap();
    let err = c.locate("nonexistent-name").unwrap_err();
    let s = err.to_string();
    assert!(s.contains("name not found"), "{s}");
    let err = c.send(UAdd::from_raw(0), &Ask::default()).unwrap_err();
    assert!(err.to_string().contains("invalid argument"));
}

#[test]
fn metrics_snapshot_is_monotonic() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.machines[1], "counted").unwrap();
    let client = lab.testbed.module(lab.machines[0], "counter").unwrap();
    let dst = client.locate("counted").unwrap();
    let before = client.metrics();
    for i in 0..5 {
        client
            .send(
                dst,
                &Ask {
                    n: i,
                    body: String::new(),
                },
            )
            .unwrap();
        server.receive(T).unwrap();
    }
    let after = client.metrics();
    // 5 data sends, plus possibly one naming-service lookup send when the
    // first ensure-connection resolved the peer (§3.3).
    assert!(after.sends >= before.sends + 5);
    assert!(after.sends <= before.sends + 6);
    assert!(after.circuits_opened >= before.circuits_opened);
    assert_eq!(after.address_faults, before.address_faults);
}
