//! The channel-layer fault matrix: every fault × layer cell must end in an
//! *expected* verdict — recovered, dead-lettered, or cleanly-errored — and
//! never hang. Each cell runs under a watchdog with a bounded budget; a
//! cell that exceeds its budget is reported as `Hung`, which no expected
//! set ever contains.
//!
//! The two ISSUE-mandated edge cells get a wider sweep: the stuck credit
//! window (must surface `FlowStalled`, never a hang) and the half-completed
//! send racing a relocation (exactly-once-or-dead-letter) each run over
//! ≥ 32 derived seeds.
//!
//! The naming layer contributes four cells: a shard primary crashing
//! mid-lookup (replica failover), a lost lease-invalidation push (the
//! lease TTL must bound staleness — swept over ≥ 32 seeds), a lookup
//! racing a relocation, and a partitioned shard group (typed errors, no
//! split-brain authority).
//!
//! The substrate layer contributes two cells, each swept over ≥ 32 seeds:
//! a reliable send racing the SHM→TCP relocation handoff (exactly-once or
//! typed dead-letter) and a wedged SHM ring (full ring, dead reader ⇒
//! typed `FlowStalled`, never a hang).

use std::time::Duration;

use ntcs_sim::{
    cells, expected, run_cell, run_cell_with_options, seed_list_from, Fault, MatrixLayer, Verdict,
};

/// Matrix cells build real multi-machine testbeds; run them one at a time
/// so wall-clock deadlines inside the cells stay honest under `cargo test`
/// parallelism.
static MATRIX_SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

const CELL_BUDGET: Duration = Duration::from_secs(30);

fn run_expecting(fault: Fault, layer: MatrixLayer, seed: u64) {
    let out = run_cell(fault, layer, seed, CELL_BUDGET);
    let allowed = expected(fault, layer);
    assert!(
        out.acceptable(),
        "cell ({fault}, {layer}) seed={seed:#x}: verdict {} not in {allowed:?}: {}",
        out.verdict,
        out.detail
    );
    assert_ne!(out.verdict, Verdict::Hung, "cell ({fault}, {layer}) hung");
}

#[test]
fn every_cell_reaches_an_expected_verdict() {
    let _serial = MATRIX_SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for (fault, layer) in cells() {
        for seed in [0x5EED_0001_u64, 0x0BAD_CAFE] {
            run_expecting(fault, layer, seed);
        }
    }
}

#[test]
fn stuck_credit_window_stalls_cleanly_across_seeds() {
    let _serial = MATRIX_SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // ≥ 32 seeds: the stall must ALWAYS surface as FlowStalled — a typed,
    // clean error — regardless of where the seed lands the window arming.
    for seed in seed_list_from(32, None) {
        let out = run_cell(
            Fault::StuckCreditWindow,
            MatrixLayer::Flow,
            seed,
            CELL_BUDGET,
        );
        assert_eq!(
            out.verdict,
            Verdict::CleanlyErrored,
            "seed {seed:#x}: {}",
            out.detail
        );
    }
}

#[test]
fn stuck_credit_window_dump_names_the_wedged_circuit() {
    let _serial = MATRIX_SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // Force the crash-dump path for a cell whose credit window is wedged:
    // the snapshot written to target/obs/ must let an operator identify
    // the stalled sender, the circuit it stalled on, and the exhausted
    // window — without re-running anything.
    let out = run_cell_with_options(
        Fault::StuckCreditWindow,
        MatrixLayer::Flow,
        0x5EED_0001,
        CELL_BUDGET,
        true,
    );
    assert_eq!(out.verdict, Verdict::CleanlyErrored, "{}", out.detail);
    let path = out
        .dump
        .as_ref()
        .expect("forced dump must produce a snapshot artifact");
    let json = std::fs::read_to_string(path).unwrap();
    assert!(
        json.contains("\"module\":\"cell-src\""),
        "dump must name the stalled sender: {json}"
    );
    assert!(
        json.contains("\"kind\":\"credit-stall\""),
        "dump must carry the credit-stall flight-recorder event: {json}"
    );
    assert!(
        json.contains("flow_credits_available"),
        "dump must expose the wedged credit window gauge: {json}"
    );
    assert!(
        json.contains("\"module\":\"cell-sink\""),
        "dump must include the unresponsive receiver's report: {json}"
    );
}

#[test]
fn naming_cells_reach_expected_verdicts() {
    let _serial = MATRIX_SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    for fault in [
        Fault::ShardReplicaCrash,
        Fault::DroppedInvalidation,
        Fault::LookupRacesRelocation,
        Fault::ShardSplitBrain,
    ] {
        for seed in [0x5EED_0001_u64, 0x0BAD_CAFE] {
            run_expecting(fault, MatrixLayer::Naming, seed);
        }
    }
}

#[test]
fn dropped_invalidation_staleness_bounded_by_lease_across_seeds() {
    let _serial = MATRIX_SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // ≥ 32 seeds: with the invalidation push lost, the cell itself asserts
    // the cache never serves an entry older than its lease TTL (a probe
    // past expiry must not be a hit) — a violated bound panics the cell
    // into Failed, which no expected set accepts. The verdict must be a
    // full Recovered: the post-expiry send re-resolves to the relocated
    // incarnation, exactly once.
    for seed in seed_list_from(32, None) {
        let out = run_cell(
            Fault::DroppedInvalidation,
            MatrixLayer::Naming,
            seed,
            CELL_BUDGET,
        );
        assert_eq!(
            out.verdict,
            Verdict::Recovered,
            "seed {seed:#x}: {}",
            out.detail
        );
    }
}

#[test]
fn send_racing_substrate_handoff_across_seeds() {
    let _serial = MATRIX_SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // ≥ 32 seeds: a reliable send racing the SHM→TCP handoff (the peer
    // relocates off the co-location host mid-send) must end exactly-once
    // (Recovered) or exactly-zero-with-typed-error (DeadLettered) — never
    // a duplicate, never a hang.
    for seed in seed_list_from(32, None) {
        let out = run_cell(
            Fault::SendRacesHandoff,
            MatrixLayer::Substrate,
            seed,
            CELL_BUDGET,
        );
        assert!(
            matches!(out.verdict, Verdict::Recovered | Verdict::DeadLettered),
            "seed {seed:#x}: verdict {}: {}",
            out.verdict,
            out.detail
        );
    }
}

#[test]
fn wedged_shm_ring_stalls_cleanly_across_seeds() {
    let _serial = MATRIX_SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // ≥ 32 seeds: filling a co-located SHM ring whose reader never runs
    // must ALWAYS surface the typed FlowStalled — never a hang, whatever
    // payload sizes the seed picks.
    for seed in seed_list_from(32, None) {
        let out = run_cell(
            Fault::WedgedShmRing,
            MatrixLayer::Substrate,
            seed,
            CELL_BUDGET,
        );
        assert_eq!(
            out.verdict,
            Verdict::CleanlyErrored,
            "seed {seed:#x}: {}",
            out.detail
        );
    }
}

#[test]
fn half_completed_send_during_relocation_across_seeds() {
    let _serial = MATRIX_SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    // ≥ 32 seeds: dropping a frame mid-send while the destination relocates
    // must end exactly-once (Recovered) or exactly-zero-with-typed-error
    // (DeadLettered) — never a duplicate, never a hang.
    for seed in seed_list_from(32, None) {
        let out = run_cell(
            Fault::HalfCompletedSend,
            MatrixLayer::Relocation,
            seed,
            CELL_BUDGET,
        );
        assert!(
            matches!(out.verdict, Verdict::Recovered | Verdict::DeadLettered),
            "seed {seed:#x}: verdict {}: {}",
            out.verdict,
            out.detail
        );
    }
}
