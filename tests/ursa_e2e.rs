//! Experiment E12 (§1, §1.2): the NTCS carrying its motivating application —
//! a distributed information-retrieval testbed across mixed machine types,
//! disjoint networks, gateways, and live reconfiguration.

use std::time::Duration;

use ntcs::{MachineType, NetKind, Testbed};
use ntcs_ursa::{Corpus, InvertedIndex, UrsaClient, UrsaDeployment, UrsaLayout};

#[test]
fn retrieval_across_networks_and_machine_types() {
    // Two disjoint networks: workstations on an Apollo-style mailbox ring,
    // backends on a TCP ethernet, joined by a gateway — the paper's target
    // deployment shape.
    let mut tb = Testbed::builder();
    let ring = tb.add_network(NetKind::Mbx, "workstation-ring");
    let ether = tb.add_network(NetKind::Tcp, "backend-ethernet");
    let ns_host = tb
        .add_machine(MachineType::Sun, "ns-host", &[ring, ether])
        .unwrap();
    let ws = tb
        .add_machine(MachineType::Apollo, "workstation", &[ring])
        .unwrap();
    let be1 = tb
        .add_machine(MachineType::Vax, "backend-vax", &[ether])
        .unwrap();
    let be2 = tb
        .add_machine(MachineType::Sun, "backend-sun", &[ether])
        .unwrap();
    let gw_host = tb
        .add_machine(MachineType::M68k, "gw-host", &[ring, ether])
        .unwrap();
    tb.name_server_on(ns_host);
    let testbed = tb.start().unwrap();
    let gw = testbed.gateway(gw_host, "ring-ether-gw").unwrap();

    let corpus = Corpus::generate(21, 200, 40);
    let deployment = UrsaDeployment::deploy(
        &testbed,
        &corpus,
        &UrsaLayout {
            index_machine: be1,
            search_machines: vec![be1, be2],
            doc_machine: be2,
        },
    )
    .unwrap();

    let client = UrsaClient::new(&testbed, ws, "workstation-1").unwrap();
    let hits = client.search("retrieval architecture", 10).unwrap();
    assert!(!hits.is_empty());
    // Results agree with a local (non-distributed) index on hit membership.
    let local = InvertedIndex::build(corpus.docs());
    let local_docs: Vec<u32> = local
        .search("retrieval architecture", 10)
        .iter()
        .map(|h| h.doc)
        .collect();
    let overlap = hits.iter().filter(|h| local_docs.contains(&h.doc)).count();
    assert!(overlap * 2 >= hits.len(), "distributed ranking diverged");

    // Fetch a document across the gateway.
    let doc = client.fetch(hits[0].doc).unwrap();
    assert_eq!(doc.id, hits[0].doc);
    assert!(
        gw.metrics().circuits_spliced >= 2,
        "queries crossed the gateway"
    );
    deployment.stop();
}

#[test]
fn three_generations_of_backends() {
    // §7: "It has been successfully employed in three generations of
    // distributed information retrieval systems" — here: the same search
    // backend replaced twice while clients keep querying the same address.
    let mut tb = Testbed::builder();
    let net = tb.add_network(NetKind::Mbx, "campus");
    let machines: Vec<_> = (0..4)
        .map(|i| {
            tb.add_machine(
                [
                    MachineType::Sun,
                    MachineType::Vax,
                    MachineType::Apollo,
                    MachineType::M68k,
                ][i],
                &format!("h{i}"),
                &[net],
            )
            .unwrap()
        })
        .collect();
    tb.name_server_on(machines[0]);
    let testbed = tb.start().unwrap();

    let corpus = Corpus::generate(31, 90, 30);
    let deployment = UrsaDeployment::deploy(
        &testbed,
        &corpus,
        &UrsaLayout {
            index_machine: machines[1],
            search_machines: vec![machines[1]],
            doc_machine: machines[1],
        },
    )
    .unwrap();
    let client = UrsaClient::new(&testbed, machines[0], "ws").unwrap();
    let gen1 = client.search("network system", 5).unwrap();
    assert!(!gen1.is_empty());

    // Generation 2: move to the Apollo. Generation 3: move to the M68k.
    deployment.relocate_search_shard(0, machines[2]).unwrap();
    let gen2 = client.search("network system", 5).unwrap();
    deployment.relocate_search_shard(0, machines[3]).unwrap();
    let gen3 = client.search("network system", 5).unwrap();

    let ids = |v: &[ntcs_ursa::SearchHit]| v.iter().map(|h| h.doc).collect::<Vec<_>>();
    assert_eq!(ids(&gen1), ids(&gen2));
    assert_eq!(ids(&gen2), ids(&gen3));
    assert!(client.commod().metrics().reconnects >= 2);
    deployment.stop();
}

#[test]
fn boolean_retrieval_matches_the_brute_force_oracle() {
    // The historical URSA's boolean query model, distributed across two
    // shards: shard union must agree with per-document evaluation of the
    // whole corpus (shards partition it, so per-shard NOT is global NOT).
    let mut tb = Testbed::builder();
    let net = tb.add_network(NetKind::Mbx, "campus");
    let m0 = tb.add_machine(MachineType::Sun, "h0", &[net]).unwrap();
    let m1 = tb.add_machine(MachineType::Vax, "h1", &[net]).unwrap();
    let m2 = tb.add_machine(MachineType::Apollo, "h2", &[net]).unwrap();
    tb.name_server_on(m0);
    let testbed = tb.start().unwrap();
    let corpus = Corpus::generate(55, 150, 30);
    let deployment = UrsaDeployment::deploy(
        &testbed,
        &corpus,
        &UrsaLayout {
            index_machine: m1,
            search_machines: vec![m1, m2],
            doc_machine: m1,
        },
    )
    .unwrap();
    let client = UrsaClient::new(&testbed, m0, "bool-ws").unwrap();

    for q in [
        "retrieval AND network",
        "system OR (index AND NOT network)",
        "retrieval network NOT gateway",
        "(retrieval OR system) AND NOT (index OR query)",
    ] {
        let expr = ntcs_ursa::BoolExpr::parse(q).unwrap();
        let expect: Vec<u32> = corpus
            .docs()
            .iter()
            .filter(|d| expr.matches_doc(d))
            .map(|d| d.id)
            .collect();
        let got = client.search_boolean(q).unwrap();
        assert_eq!(got, expect, "query {q:?}");
    }
    // Malformed queries are rejected cleanly.
    assert!(client.search_boolean("( broken").is_err());
    deployment.stop();
}

#[test]
fn concurrent_workstations() {
    let mut tb = Testbed::builder();
    let net = tb.add_network(NetKind::Mbx, "campus");
    let m0 = tb.add_machine(MachineType::Sun, "h0", &[net]).unwrap();
    let m1 = tb.add_machine(MachineType::Vax, "h1", &[net]).unwrap();
    tb.name_server_on(m0);
    let testbed = tb.start().unwrap();
    let corpus = Corpus::generate(41, 100, 25);
    let deployment = UrsaDeployment::deploy(
        &testbed,
        &corpus,
        &UrsaLayout {
            index_machine: m1,
            search_machines: vec![m1],
            doc_machine: m1,
        },
    )
    .unwrap();

    let mut threads = Vec::new();
    for w in 0..4 {
        let testbed_net = &testbed;
        let client = UrsaClient::new(testbed_net, m0, &format!("ws-{w}")).unwrap();
        threads.push(std::thread::spawn(move || {
            for q in ["retrieval", "network message", "system index"] {
                let hits = client.search(q, 5).unwrap();
                if let Some(best) = hits.first() {
                    let doc = client.fetch(best.doc).unwrap();
                    assert_eq!(doc.id, best.doc);
                }
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    deployment.stop();
    let _ = Duration::from_secs(0);
}
