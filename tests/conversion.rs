//! Experiment E3 (§5): inter-machine data conversion.
//!
//! "Messages between identical machines are simply byte-copied (image mode)
//! while those between incompatible machines are transmitted in a converted
//! representation (packed mode). The NTCS determines the correct mode based
//! on the source and destination machine types, thus avoiding needless
//! conversions" — and the mode "adapts dynamically to the environment as
//! modules are relocated."

use std::time::Duration;

use ntcs::{ConvMode, MachineType, NetKind, Testbed};
use ntcs_repro::messages::{Bulk, Numbers};

const T: Option<Duration> = Some(Duration::from_secs(10));

fn pair_lab(a: MachineType, b: MachineType) -> (Testbed, ntcs::MachineId, ntcs::MachineId) {
    let mut tb = Testbed::builder();
    let net = tb.add_network(NetKind::Mbx, "lan");
    let ma = tb.add_machine(a, "a", &[net]).unwrap();
    let mb = tb.add_machine(b, "b", &[net]).unwrap();
    tb.name_server_on(ma);
    (tb.start().unwrap(), ma, mb)
}

fn numbers() -> Numbers {
    Numbers {
        a: 0x0102_0304,
        b: -987_654_321,
        c: 2.5625,
        d: true,
        s: "représentation".into(),
    }
}

/// Sends one message and returns the mode it travelled in, asserting the
/// payload decoded intact.
fn observe_mode(a: MachineType, b: MachineType) -> ConvMode {
    let (testbed, ma, mb) = pair_lab(a, b);
    let server = testbed.module(mb, "sink").unwrap();
    let client = testbed.module(ma, "src").unwrap();
    let dst = client.locate("sink").unwrap();
    client.send(dst, &numbers()).unwrap();
    let got = server.receive(T).unwrap();
    let decoded: Numbers = got.decode().unwrap();
    assert_eq!(decoded, numbers(), "{a} → {b} payload corrupted");
    got.raw().payload.mode
}

#[test]
fn full_machine_pair_mode_matrix() {
    // The complete experiment-E3 matrix: mode chosen per machine pair, with
    // correctness in every cell.
    for a in MachineType::ALL {
        for b in MachineType::ALL {
            let expect = ConvMode::select(a, b);
            let got = observe_mode(a, b);
            assert_eq!(got, expect, "pair {a} → {b}");
        }
    }
}

#[test]
fn image_mode_truly_skips_conversion() {
    // Between like machines the bytes on the wire ARE the native memory
    // image (no needless conversions): verify by encoding locally.
    let (testbed, ma, mb) = pair_lab(MachineType::Sun, MachineType::Apollo);
    let server = testbed.module(mb, "sink").unwrap();
    let client = testbed.module(ma, "src").unwrap();
    let dst = client.locate("sink").unwrap();
    let msg = Bulk::sized(1, 64);
    client.send(dst, &msg).unwrap();
    let got = server.receive(T).unwrap();
    assert_eq!(got.raw().payload.mode, ConvMode::Image);
    let local_image = ntcs_wire::encode_payload(&msg, ConvMode::Image, MachineType::Sun);
    assert_eq!(got.raw().payload.bytes, local_image);
}

#[test]
fn packed_mode_is_character_representation() {
    let (testbed, ma, mb) = pair_lab(MachineType::Vax, MachineType::Sun);
    let server = testbed.module(mb, "sink").unwrap();
    let client = testbed.module(ma, "src").unwrap();
    let dst = client.locate("sink").unwrap();
    client
        .send(
            dst,
            &Numbers {
                a: 1234,
                ..numbers()
            },
        )
        .unwrap();
    let got = server.receive(T).unwrap();
    assert_eq!(got.raw().payload.mode, ConvMode::Packed);
    // The wire format is pure characters for numbers (§5.1 sprintf/sscanf).
    let bytes = &got.raw().payload.bytes;
    assert!(
        bytes.windows(6).any(|w| w == b"u1234;"),
        "packed stream should contain the decimal rendering"
    );
}

#[test]
fn mode_adapts_when_module_relocates() {
    // VAX client → Sun server: packed. Relocate the server to another VAX:
    // the re-established circuit switches to image mode, dynamically.
    let mut tb = Testbed::builder();
    let net = tb.add_network(NetKind::Mbx, "lan");
    let vax1 = tb.add_machine(MachineType::Vax, "vax1", &[net]).unwrap();
    let sun = tb.add_machine(MachineType::Sun, "sun", &[net]).unwrap();
    let vax2 = tb.add_machine(MachineType::Vax, "vax2", &[net]).unwrap();
    tb.name_server_on(vax1);
    let testbed = tb.start().unwrap();

    let server = testbed.module(sun, "svc").unwrap();
    let client = testbed.module(vax1, "cli").unwrap();
    let dst = client.locate("svc").unwrap();
    client.send(dst, &numbers()).unwrap();
    let got = server.receive(T).unwrap();
    assert_eq!(got.raw().payload.mode, ConvMode::Packed);

    let server = server.relocate_to(vax2).unwrap();
    client.send(dst, &numbers()).unwrap();
    let got = server.receive(T).unwrap();
    assert_eq!(
        got.raw().payload.mode,
        ConvMode::Image,
        "mode must adapt after relocation (§5)"
    );
    assert_eq!(got.decode::<Numbers>().unwrap(), numbers());
}

#[test]
fn mode_adapts_the_other_way_too() {
    // Sun → Sun: image. Relocate to VAX: packed.
    let mut tb = Testbed::builder();
    let net = tb.add_network(NetKind::Mbx, "lan");
    let sun1 = tb.add_machine(MachineType::Sun, "sun1", &[net]).unwrap();
    let sun2 = tb.add_machine(MachineType::Sun, "sun2", &[net]).unwrap();
    let vax = tb.add_machine(MachineType::Vax, "vax", &[net]).unwrap();
    tb.name_server_on(sun1);
    let testbed = tb.start().unwrap();

    let server = testbed.module(sun2, "svc").unwrap();
    let client = testbed.module(sun1, "cli").unwrap();
    let dst = client.locate("svc").unwrap();
    client.send(dst, &Bulk::sized(0, 16)).unwrap();
    assert_eq!(
        server.receive(T).unwrap().raw().payload.mode,
        ConvMode::Image
    );

    let server = server.relocate_to(vax).unwrap();
    client.send(dst, &Bulk::sized(1, 16)).unwrap();
    let got = server.receive(T).unwrap();
    assert_eq!(got.raw().payload.mode, ConvMode::Packed);
    assert_eq!(got.decode::<Bulk>().unwrap(), Bulk::sized(1, 16));
}

#[test]
fn headers_are_shift_mode_regardless_of_endpoints() {
    // §5.2: headers travel in shift mode for ALL transfers. Indirectly
    // visible: a VAX↔Sun exchange decodes correctly even though no packing
    // is applied to the header itself (the frame codec is shift-only).
    let (testbed, ma, mb) = pair_lab(MachineType::Vax, MachineType::Sun);
    let server = testbed.module(mb, "sink").unwrap();
    let client = testbed.module(ma, "src").unwrap();
    let dst = client.locate("sink").unwrap();
    let id = client.send(dst, &numbers()).unwrap();
    let got = server.receive(T).unwrap();
    assert_eq!(
        got.msg_id(),
        id,
        "header fields survive byte-order difference"
    );
    assert_eq!(got.src(), client.my_uadd());
}
