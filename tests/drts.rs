//! Experiment E14: the DRTS services through the public API — precision
//! time correction on skewed clocks, and the monitor observing NTCS traffic
//! recursively (§1.3, §6.1).

use std::sync::Arc;
use std::time::Duration;

use ntcs::NetKind;
use ntcs_drts::{DrtsRuntime, MonitorService, TimeService};
use ntcs_repro::messages::Ask;
use ntcs_repro::scenarios::single_net_with_skews;

const T: Option<Duration> = Some(Duration::from_secs(10));

#[test]
fn time_correction_converges_across_many_machines() {
    // Machines skewed from -120 ms to +90 ms; after one sync each, every
    // corrected clock is within a couple of RTTs of the reference.
    let skews = [0i64, 90_000, -120_000, 40_000, -5_000];
    let lab = single_net_with_skews(5, NetKind::Mbx, &skews).unwrap();
    let ts = TimeService::spawn(&lab.testbed, lab.machines[0]).unwrap();
    for (i, &m) in lab.machines.iter().enumerate().skip(1) {
        let c = lab.testbed.module(m, &format!("sync-{i}")).unwrap();
        let clock = lab.testbed.world().clock(m).unwrap();
        let stats = TimeService::sync(&c, &clock, ts.uadd(), 5).unwrap();
        assert!(
            stats.residual_error_us < 20_000,
            "machine {i}: residual {} µs",
            stats.residual_error_us
        );
    }
    ts.stop();
}

#[test]
fn corrections_hold_as_skew_changes() {
    let lab = single_net_with_skews(2, NetKind::Mbx, &[0, 50_000]).unwrap();
    let ts = TimeService::spawn(&lab.testbed, lab.machines[0]).unwrap();
    let c = lab.testbed.module(lab.machines[1], "drifter").unwrap();
    let clock = lab.testbed.world().clock(lab.machines[1]).unwrap();
    TimeService::sync(&c, &clock, ts.uadd(), 3).unwrap();
    assert!(clock.error_us() < 20_000);
    // The machine's oscillator jumps (operator swapped a board, say):
    clock.set_skew(-70_000, 0.0);
    assert!(clock.error_us() > 40_000);
    // The next sync re-converges — corrections accumulate incrementally.
    TimeService::sync(&c, &clock, ts.uadd(), 3).unwrap();
    assert!(clock.error_us() < 20_000);
    ts.stop();
}

#[test]
fn monitor_sees_cross_module_conversations() {
    let lab = single_net_with_skews(3, NetKind::Mbx, &[0, 10_000, -10_000]).unwrap();
    let monitor = MonitorService::spawn(&lab.testbed, lab.machines[0]).unwrap();
    let server = Arc::new(lab.testbed.module(lab.machines[1], "watched-srv").unwrap());
    let client = Arc::new(lab.testbed.module(lab.machines[2], "watched-cli").unwrap());
    let _rt_s = DrtsRuntime::attach(&server, None, Some(monitor.uadd()), Duration::from_secs(60));
    let _rt_c = DrtsRuntime::attach(&client, None, Some(monitor.uadd()), Duration::from_secs(60));

    let dst = client.locate("watched-srv").unwrap();
    for i in 0..5 {
        client
            .send(
                dst,
                &Ask {
                    n: i,
                    body: String::new(),
                },
            )
            .unwrap();
        server.receive(T).unwrap();
    }
    // Both perspectives arrive at the monitor.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let cli = monitor.stats(client.my_uadd().raw());
        let srv = monitor.stats(server.my_uadd().raw());
        if cli.sends >= 5 && srv.receives >= 5 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "monitor missing events: cli={cli:?} srv={srv:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // Aggregate query across all modules.
    let all = monitor.stats(0);
    assert!(all.total >= 10);
    monitor.stop();
}

#[test]
fn monitor_timestamps_use_corrected_clocks() {
    // With a 100 ms skew and time correction enabled, monitor timestamps
    // from the skewed machine land near true time, not 100 ms off.
    let lab = single_net_with_skews(3, NetKind::Mbx, &[0, 100_000, 0]).unwrap();
    let ts = TimeService::spawn(&lab.testbed, lab.machines[0]).unwrap();
    let monitor = MonitorService::spawn(&lab.testbed, lab.machines[2]).unwrap();
    let server = lab.testbed.module(lab.machines[0], "plain-sink").unwrap();
    let client = Arc::new(lab.testbed.module(lab.machines[1], "skewed-cli").unwrap());
    let _rt = DrtsRuntime::attach(
        &client,
        Some(ts.uadd()),
        Some(monitor.uadd()),
        Duration::from_secs(3600),
    );
    let dst = client.locate("plain-sink").unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 1,
                body: String::new(),
            },
        )
        .unwrap();
    server.receive(T).unwrap();

    let reference = lab.testbed.world().clock(lab.machines[0]).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = monitor.stats(client.my_uadd().raw());
        if stats.total >= 1 {
            let err = (stats.last_timestamp_us - reference.true_us()).abs();
            assert!(
                err < 60_000,
                "monitor timestamp off by {err} µs despite correction"
            );
            break;
        }
        assert!(std::time::Instant::now() < deadline);
        std::thread::sleep(Duration::from_millis(50));
    }
    monitor.stop();
    ts.stop();
}
