//! Experiment E22: shared-memory + UDP substrates and runtime-adaptive
//! transport selection.
//!
//! Co-located modules should ride the memory-speed SHM ring; datagram
//! (`cast`) traffic should prefer UDP when available; reliable traffic on
//! a UDP-bound circuit should upgrade to a connection-oriented substrate;
//! and a relocation off-machine should trigger an SHM→TCP handoff with no
//! message lost or reordered.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::Duration;

use ntcs::{MachineType, NetKind, SubstrateBinding, Testbed};
use ntcs_drts::host::Handler;
use ntcs_drts::ServiceHost;
use ntcs_nucleus::event_kind;
use ntcs_repro::messages::{Answer, Ask};
use ntcs_repro::scenarios::colocated;

fn echo_handler(received: &Arc<AtomicU32>) -> Handler {
    let rc = Arc::clone(received);
    Box::new(move |commod, msg| {
        if let Ok(a) = msg.decode::<Ask>() {
            rc.fetch_add(1, Ordering::Relaxed);
            let _ = commod.reply(
                &msg,
                &Answer {
                    n: a.n,
                    body: String::new(),
                },
            );
        }
    })
}

/// Two modules on the co-location host converse over the SHM ring: the
/// selection plane records a fresh choice with the SHM substrate code.
#[test]
fn colocated_modules_select_shm() {
    let lab = colocated(NetKind::Tcp).unwrap();
    let received = Arc::new(AtomicU32::new(0));
    let _host =
        ServiceHost::spawn(&lab.testbed, lab.host, "colo-srv", echo_handler(&received)).unwrap();
    let client = lab.testbed.module(lab.host, "colo-cli").unwrap();
    let dst = client.locate("colo-srv").unwrap();

    for i in 0..5u32 {
        let reply = client
            .send_receive(
                dst,
                &Ask {
                    n: i,
                    body: String::new(),
                },
                Some(Duration::from_secs(5)),
            )
            .unwrap();
        assert_eq!(reply.decode::<Answer>().unwrap().n, i);
    }

    let m = client.metrics();
    assert!(m.substrate_selects >= 1, "no substrate choice recorded");
    assert_eq!(m.substrate_handoffs, 0, "no relocation happened");
    let report = client.module_report();
    let chose_shm = report
        .events
        .iter()
        .any(|e| e.kind == event_kind::SUBSTRATE && e.aux == u64::from(SubstrateBinding::SHM));
    assert!(
        chose_shm,
        "expected a SUBSTRATE event with the SHM code; events: {:?}",
        report
            .events
            .iter()
            .filter(|e| e.kind == event_kind::SUBSTRATE)
            .collect::<Vec<_>>()
    );
}

/// A server relocating off the co-location host forces the circuit from
/// the SHM ring onto TCP mid-conversation. Reliable traffic across the
/// handoff arrives exactly once and in order.
#[test]
fn relocation_hands_off_shm_to_tcp_without_loss() {
    let lab = colocated(NetKind::Tcp).unwrap();
    let seen: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let sc = Arc::clone(&seen);
    let handler: Handler = Box::new(move |commod, msg| {
        if let Ok(a) = msg.decode::<Ask>() {
            sc.lock().unwrap().push(a.n);
            let _ = commod.reply(
                &msg,
                &Answer {
                    n: a.n,
                    body: String::new(),
                },
            );
        }
    });
    let host = ServiceHost::spawn(&lab.testbed, lab.host, "mover", handler).unwrap();
    let client = lab.testbed.module(lab.host, "talker").unwrap();
    let dst = client.locate("mover").unwrap();

    for i in 0..20u32 {
        if i == 8 {
            host.relocate(lab.remote).unwrap();
        }
        client
            .send_reliable(
                dst,
                &Ask {
                    n: i,
                    body: String::new(),
                },
                Duration::from_secs(10),
            )
            .unwrap();
    }

    let got = seen.lock().unwrap().clone();
    assert_eq!(
        got,
        (0..20u32).collect::<Vec<_>>(),
        "messages lost, duplicated, or reordered across the handoff"
    );
    let m = client.metrics();
    assert!(
        m.substrate_handoffs >= 1,
        "relocation off-machine must re-select the substrate (selects={}, handoffs={})",
        m.substrate_selects,
        m.substrate_handoffs
    );
    let report = client.module_report();
    assert!(
        report
            .events
            .iter()
            .any(|e| e.kind == event_kind::SUBSTRATE && e.aux >= 0x100),
        "expected a handoff-encoded SUBSTRATE event (aux = 0x100 | old<<4 | new)"
    );
}

/// On a machine homed on both a UDP and a TCP network, datagram traffic
/// (`cast`) picks UDP; a later reliable send to the same peer upgrades
/// the circuit onto TCP (drain-then-switch), counted as a handoff.
#[test]
fn datagram_prefers_udp_and_reliable_upgrades() {
    let mut tb = Testbed::builder();
    let net_u = tb.add_network(NetKind::Udp, "dgram");
    let net_t = tb.add_network(NetKind::Tcp, "wire");
    let m0 = tb
        .add_machine(MachineType::Sun, "left", &[net_u, net_t])
        .unwrap();
    let m1 = tb
        .add_machine(MachineType::Vax, "right", &[net_u, net_t])
        .unwrap();
    tb.name_server_on(m0);
    let testbed = tb.start().unwrap();

    let received = Arc::new(AtomicU32::new(0));
    let _srv = ServiceHost::spawn(&testbed, m1, "udp-srv", echo_handler(&received)).unwrap();
    let client = testbed.module(m0, "udp-cli").unwrap();
    let dst = client.locate("udp-srv").unwrap();

    client
        .cast(
            dst,
            &Ask {
                n: 1,
                body: String::new(),
            },
        )
        .unwrap();
    // The cast is fire-and-forget; wait until the server has it so the
    // UDP binding is definitely established before the upgrade probe.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while received.load(Ordering::Relaxed) == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let after_cast = client.metrics();
    assert!(after_cast.substrate_selects >= 1);
    let report = client.module_report();
    assert!(
        report.events.iter().any(|e| {
            e.kind == event_kind::SUBSTRATE && e.aux == u64::from(SubstrateBinding::UDP)
        }),
        "datagram traffic should have selected UDP"
    );

    let reply = client
        .send_receive(
            dst,
            &Ask {
                n: 2,
                body: String::new(),
            },
            Some(Duration::from_secs(5)),
        )
        .unwrap();
    assert_eq!(reply.decode::<Answer>().unwrap().n, 2);
    let after_reliable = client.metrics();
    assert!(
        after_reliable.substrate_selects > after_cast.substrate_selects,
        "reliable send on a UDP-bound circuit must re-select"
    );
    let report = client.module_report();
    assert!(
        report.events.iter().any(|e| {
            e.kind == event_kind::SUBSTRATE && e.aux == u64::from(SubstrateBinding::TCP)
        }),
        "reliable traffic should have upgraded onto TCP"
    );
}

/// A gateway splices an internet virtual circuit whose two legs ride
/// different substrates: client —UDP→ gateway —TCP→ server.
#[test]
fn gateway_splices_across_substrates() {
    let mut tb = Testbed::builder();
    let net_u = tb.add_network(NetKind::Udp, "dgram");
    let net_t = tb.add_network(NetKind::Tcp, "wire");
    let m0 = tb
        .add_machine(MachineType::Sun, "edge-u", &[net_u])
        .unwrap();
    let gw_m = tb
        .add_machine(MachineType::Apollo, "gw-host", &[net_u, net_t])
        .unwrap();
    let m1 = tb
        .add_machine(MachineType::Vax, "edge-t", &[net_t])
        .unwrap();
    tb.name_server_on(gw_m);
    let testbed = tb.start().unwrap();
    let gateway = testbed.gateway(gw_m, "gw").unwrap();

    let received = Arc::new(AtomicU32::new(0));
    let _srv = ServiceHost::spawn(&testbed, m1, "far-srv", echo_handler(&received)).unwrap();
    let client = testbed.module(m0, "near-cli").unwrap();
    let dst = client.locate("far-srv").unwrap();

    for i in 0..3u32 {
        let reply = client
            .send_receive(
                dst,
                &Ask {
                    n: i,
                    body: String::new(),
                },
                Some(Duration::from_secs(10)),
            )
            .unwrap();
        assert_eq!(reply.decode::<Answer>().unwrap().n, i);
    }
    assert!(
        gateway.metrics().circuits_spliced >= 1,
        "the UDP→TCP circuit must have been spliced at the gateway"
    );
}
