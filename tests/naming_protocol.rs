//! Naming-service protocol corners: snapshots, replica catch-up material,
//! and direct protocol-level exchanges against a live Name Server.

use std::time::Duration;

use ntcs::{NetKind, UAdd};
use ntcs_naming::protocol::{
    NsAck, NsLookup, NsLookupReply, NsRegister, NsRegisterReply, NsSnapshotReply, NsSnapshotRequest,
};
use ntcs_repro::scenarios::single_net;
use ntcs_wire::Message;

const T: Option<Duration> = Some(Duration::from_secs(5));

#[test]
fn snapshot_returns_the_whole_database() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let a = lab.testbed.module(lab.machines[1], "snap-a").unwrap();
    let _b = lab.testbed.module(lab.machines[0], "snap-b").unwrap();

    let reply = a
        .nucleus()
        .request(UAdd::NAME_SERVER, &NsSnapshotRequest::default(), T)
        .unwrap();
    let snap: NsSnapshotReply = reply.payload.decode(a.machine_type()).unwrap();
    // name-server self-record + snap-a + snap-b at least.
    assert!(snap.records.len() >= 3, "{} records", snap.records.len());
    let names: Vec<String> = snap.records.iter().map(|r| r.attrs_wire.clone()).collect();
    assert!(names.iter().any(|n| n.contains("snap-a")));
    assert!(names.iter().any(|n| n.contains("snap-b")));
    assert!(names.iter().any(|n| n.contains("name-server")));
}

#[test]
fn snapshot_preserves_generation_history() {
    let lab = single_net(3, NetKind::Mbx).unwrap();
    let m = lab.testbed.module(lab.machines[1], "historied").unwrap();
    let m = m.relocate_to(lab.machines[2]).unwrap();
    let reply = m
        .nucleus()
        .request(UAdd::NAME_SERVER, &NsSnapshotRequest::default(), T)
        .unwrap();
    let snap: NsSnapshotReply = reply.payload.decode(m.machine_type()).unwrap();
    let historied: Vec<_> = snap
        .records
        .iter()
        .filter(|r| r.attrs_wire.contains("historied"))
        .collect();
    assert_eq!(historied.len(), 2, "both generations recorded");
    let dead = historied.iter().filter(|r| !r.alive).count();
    let alive = historied.iter().filter(|r| r.alive).count();
    assert_eq!((dead, alive), (1, 1));
    let max_gen = historied.iter().map(|r| r.generation).max().unwrap();
    assert_eq!(max_gen, 1);
}

#[test]
fn raw_register_and_lookup_round_trip() {
    // Drive the wire protocol directly (what a non-Rust implementation of
    // the NSP layer would do).
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let probe = lab.testbed.commod(lab.machines[1], "raw-probe").unwrap();
    let phys = ntcs_naming::protocol::phys_to_blobs(&probe.nucleus().nd().phys_addrs());
    let reply = probe
        .nucleus()
        .request(
            UAdd::NAME_SERVER,
            &NsRegister {
                attrs_wire: "name=raw-probe&role=test".into(),
                phys,
                machine_type: probe.machine_type().wire_code(),
                is_gateway: false,
                gateway_networks: vec![],
                prev_uadd: 0,
            },
            T,
        )
        .unwrap();
    let reg: NsRegisterReply = reply.payload.decode(probe.machine_type()).unwrap();
    assert!(reg.uadd > UAdd::WELL_KNOWN_MAX);

    let reply = probe
        .nucleus()
        .request(UAdd::NAME_SERVER, &NsLookup { uadd: reg.uadd }, T)
        .unwrap();
    let lk: NsLookupReply = reply.payload.decode(probe.machine_type()).unwrap();
    assert!(lk.found && lk.alive);
    assert_eq!(lk.machine_type, probe.machine_type().wire_code());
}

#[test]
fn unknown_message_type_gets_negative_ack() {
    use ntcs::ntcs_message;
    ntcs_message! {
        pub struct Mystery: 7777 { pub x: u32 }
    }
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let probe = lab.testbed.module(lab.machines[1], "mystery").unwrap();
    let reply = probe
        .nucleus()
        .request(UAdd::NAME_SERVER, &Mystery { x: 1 }, T)
        .unwrap();
    assert_eq!(reply.payload.type_id, NsAck::TYPE_ID);
    let ack: NsAck = reply.payload.decode(probe.machine_type()).unwrap();
    assert!(!ack.ok);
}
