//! World-level fault-injection semantics: crash/revive lifecycles, repeated
//! faults, group partitions (split-brain), and recovery through the full
//! stack — including prime-gateway bootstrap routes after a brain heals.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ntcs::{MachineId, MachineType, NetKind, NtcsError, World};
use ntcs_ipcs::{Bytes, IpcsChannel};
use ntcs_repro::chaos::{spawn_counter, SERIAL};
use ntcs_repro::messages::Ask;
use ntcs_repro::scenarios::{primed_internet, primed_module, single_net};
use parking_lot::Mutex;

const T: Option<Duration> = Some(Duration::from_secs(5));

#[test]
fn crash_is_idempotent_and_revive_restores_placement() {
    let lab = single_net(3, NetKind::Mbx).unwrap();
    let world = lab.testbed.world();
    world.crash(lab.machines[2]);
    world.crash(lab.machines[2]); // idempotent
    assert!(!world.is_alive(lab.machines[2]));
    // A module cannot bind on a dead machine…
    assert!(lab.testbed.commod(lab.machines[2], "ghost").is_err());
    // …until the machine is revived; then a NEW module starts fresh (old
    // resources stay dead — the DRTS restarts modules, not the world).
    world.revive(lab.machines[2]);
    let reborn = lab.testbed.module(lab.machines[2], "reborn").unwrap();
    let client = lab.testbed.module(lab.machines[0], "caller").unwrap();
    let dst = client.locate("reborn").unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 1,
                body: String::new(),
            },
        )
        .unwrap();
    assert_eq!(reborn.receive(T).unwrap().decode::<Ask>().unwrap().n, 1);
}

#[test]
fn crash_restart_reregister_cycle() {
    // The full module lifecycle across a machine crash: the service dies
    // unregistered; a replacement registers with the same name; old-address
    // senders recover via forwarding (§3.5 applied to crash recovery, the
    // DRTS process-management story).
    let lab = single_net(3, NetKind::Mbx).unwrap();
    let world = lab.testbed.world();
    let victim = lab.testbed.module(lab.machines[1], "svc").unwrap();
    let victim_uadd = victim.my_uadd();
    let client = lab.testbed.module(lab.machines[0], "user").unwrap();
    let dst = client.locate("svc").unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 0,
                body: String::new(),
            },
        )
        .unwrap();
    victim.receive(T).unwrap();

    world.crash(lab.machines[1]);
    std::thread::sleep(Duration::from_millis(100));
    // Sends fail while no replacement exists.
    assert!(client
        .send(
            dst,
            &Ask {
                n: 1,
                body: String::new()
            }
        )
        .is_err());

    // The process controller restarts the service elsewhere, naming the
    // dead predecessor so forwarding links the generations.
    let replacement = lab.testbed.commod(lab.machines[2], "svc").unwrap();
    replacement
        .nsp()
        .register(
            &ntcs::AttrSet::named("svc").unwrap(),
            false,
            &[],
            Some(victim_uadd),
        )
        .unwrap();
    // The client's next send to the OLD address reaches the replacement.
    client
        .send(
            dst,
            &Ask {
                n: 2,
                body: String::new(),
            },
        )
        .unwrap();
    assert_eq!(
        replacement.receive(T).unwrap().decode::<Ask>().unwrap().n,
        2
    );
}

#[test]
fn drop_probability_is_clamped() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.machines[1], "sink").unwrap();
    let client = lab.testbed.commod(lab.machines[0], "src").unwrap();
    // 5000 ‰ clamps to 1000 ‰ (total loss) rather than misbehaving.
    lab.testbed
        .world()
        .set_drop_permille(lab.net, 5000)
        .unwrap();
    // Registration itself needs the wire: with total loss the naming
    // exchange dies one way or another — the open frame vanishes (timeout),
    // the server gives up on the silent circuit first (closed), or the
    // supervised naming retry exhausts its deadline budget.
    let err = client.register("src").unwrap_err();
    assert!(
        matches!(
            err,
            NtcsError::Timeout
                | NtcsError::NameServerUnreachable
                | NtcsError::ConnectionClosed
                | NtcsError::DeadlineExceeded
        ),
        "{err}"
    );
    lab.testbed.world().set_drop_permille(lab.net, 0).unwrap();
    // Transient half-open circuits from the lossy window may need one
    // retry to clear.
    let mut registered = false;
    for _ in 0..3 {
        if client.register("src").is_ok() {
            registered = true;
            break;
        }
    }
    assert!(registered, "registration must succeed once the wire heals");
    let dst = client.locate("sink").unwrap();
    client
        .send(
            dst,
            &Ask {
                n: 1,
                body: String::new(),
            },
        )
        .unwrap();
    server.receive(T).unwrap();
}

#[test]
fn unknown_machine_operations_fail_cleanly() {
    let lab = single_net(1, NetKind::Mbx).unwrap();
    let world = lab.testbed.world();
    let ghost = ntcs::MachineId(99);
    assert!(!world.is_alive(ghost));
    world.crash(ghost); // no-op, no panic
    world.revive(ghost); // no-op, no panic
    assert!(world.machine_info(ghost).is_err());
    assert!(world.clock(ghost).is_err());
    assert!(world
        .set_latency(ntcs::NetworkId(42), Duration::from_millis(1))
        .is_err());
}

#[test]
fn partition_affects_only_the_named_pair() {
    let lab = single_net(3, NetKind::Mbx).unwrap();
    let world = lab.testbed.world();
    let b = lab.testbed.module(lab.machines[1], "b").unwrap();
    let c = lab.testbed.module(lab.machines[2], "c").unwrap();
    let a = lab.testbed.module(lab.machines[0], "a").unwrap();
    let to_b = a.locate("b").unwrap();
    let to_c = a.locate("c").unwrap();
    // Warm b→c before the partition: the Name Server lives on machine 0,
    // so b can neither resolve nor look up addresses while cut off from m0.
    let to_c_from_b = b.locate("c").unwrap();
    b.send(
        to_c_from_b,
        &Ask {
            n: 0,
            body: String::new(),
        },
    )
    .unwrap();
    assert_eq!(c.receive(T).unwrap().decode::<Ask>().unwrap().n, 0);

    world.set_partition(lab.machines[0], lab.machines[1], true);
    std::thread::sleep(Duration::from_millis(50));
    assert!(a
        .send(
            to_b,
            &Ask {
                n: 1,
                body: String::new()
            }
        )
        .is_err());
    // a ↔ c unaffected.
    a.send(
        to_c,
        &Ask {
            n: 2,
            body: String::new(),
        },
    )
    .unwrap();
    assert_eq!(c.receive(T).unwrap().decode::<Ask>().unwrap().n, 2);
    // b ↔ c unaffected.
    b.send(
        to_c_from_b,
        &Ask {
            n: 3,
            body: String::new(),
        },
    )
    .unwrap();
    assert_eq!(c.receive(T).unwrap().decode::<Ask>().unwrap().n, 3);
    world.set_partition(lab.machines[0], lab.machines[1], false);
}

// ---------------------------------------------------------------------
// Split-brain (group partition) + prime-gateway route recovery (§3.4
// meets §6): a two-network primed internet whose ONLY path to the Name
// Server from net1 is a preconfigured prime gateway — and the split puts
// that gateway on the minority side, away from the Name Server. While
// split, minority naming must fail with typed errors (never hang); after
// `heal_all_partitions` the same prime route must work again without
// respawning anything.
// ---------------------------------------------------------------------

fn machine_by_name(world: &World, name: &str) -> MachineId {
    world
        .machines()
        .into_iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("no machine named {name}"))
        .id
}

#[test]
fn split_brain_cuts_minority_and_heal_restores_prime_routes() {
    let _serial = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let lab = primed_internet(2, NetKind::Mbx).unwrap();
    let world = lab.testbed.world().clone();
    let ns_host = machine_by_name(&world, "ns-host");
    let gw_host = machine_by_name(&world, "gw-host0");
    let (edge0, edge1) = (lab.edge_machines[0], lab.edge_machines[1]);

    // Bootstrap both sides while the world is whole: the minority module
    // registers through the prime gateway (its only path to the NS).
    let min_svc = primed_module(&lab, 1, "min-svc").unwrap();
    let maj_client = primed_module(&lab, 0, "maj-client").unwrap();
    let min_uadd = min_svc.my_uadd();

    // Warm a cross-splice circuit and prove delivery.
    let stop = Arc::new(AtomicBool::new(false));
    let delivered = Arc::new(Mutex::new(HashMap::new()));
    let counter = spawn_counter(min_svc, Arc::clone(&stop), Arc::clone(&delivered));
    let dst = maj_client.locate("min-svc").unwrap();
    assert_eq!(dst, min_uadd);
    maj_client
        .send_reliable(
            dst,
            &Ask {
                n: 1,
                body: String::new(),
            },
            Duration::from_secs(5),
        )
        .unwrap();

    // Split-brain: majority {ns-host, edge0} vs minority {gw-host0, edge1}.
    // The prime gateway is marooned on the side WITHOUT the Name Server.
    world.set_partition_groups(&[&[ns_host, edge0], &[gw_host, edge1]]);
    assert_eq!(
        world.partitioned_pairs().len(),
        4,
        "2x2 split-brain must partition every cross pair"
    );

    // Minority side: naming through the prime gateway must fail TYPED —
    // the gateway is alive but its far side is dark.
    match primed_module(&lab, 1, "min-probe").map(|_| ()) {
        Ok(()) => panic!("minority registration must not succeed while split"),
        Err(
            NtcsError::DeadlineExceeded
            | NtcsError::Timeout
            | NtcsError::NameServerUnreachable
            | NtcsError::CircuitBroken(_)
            | NtcsError::ConnectionClosed
            | NtcsError::ConnectRefused(_),
        ) => {}
        Err(e) => panic!("split-brain naming failed with an untyped error: {e}"),
    }

    // Majority side: the Name Server is local — naming still answers.
    assert_eq!(
        maj_client.locate("min-svc").unwrap(),
        min_uadd,
        "majority-side naming must keep answering during the split"
    );

    // Cross-brain delivery fails typed (the splice is severed).
    match maj_client.send_reliable(
        dst,
        &Ask {
            n: 2,
            body: String::new(),
        },
        Duration::from_secs(2),
    ) {
        Ok(_) => panic!("cross-brain send must not be acknowledged"),
        Err(NtcsError::DeadlineExceeded | NtcsError::CircuitBroken(_)) => {}
        Err(e) => panic!("cross-brain send failed with an untyped error: {e}"),
    }

    // Heal. The prime gateway's route to the Name Server must recover
    // without respawning anything: a NEW minority module bootstraps
    // through the same prime route...
    world.heal_all_partitions();
    assert!(world.partitioned_pairs().is_empty());
    let min_svc2 = primed_module(&lab, 1, "min-svc2").unwrap();

    // ...the majority can locate it...
    let dst2 = maj_client.locate("min-svc2").unwrap();
    assert_eq!(dst2, min_svc2.my_uadd());

    // ...and the healed splice carries traffic again, exactly once.
    let got = std::thread::spawn(move || {
        min_svc2
            .receive(Some(Duration::from_secs(10)))
            .unwrap()
            .decode::<Ask>()
            .unwrap()
            .n
    });
    maj_client
        .send_reliable(
            dst2,
            &Ask {
                n: 3,
                body: String::new(),
            },
            Duration::from_secs(10),
        )
        .unwrap();
    assert_eq!(got.join().unwrap(), 3);

    stop.store(true, Ordering::SeqCst);
    let _ = counter.join().unwrap();
    // The warm-up message reached the old minority module exactly once;
    // message 2 (dead-lettered mid-split) at most once.
    let tally = delivered.lock();
    assert_eq!(tally.get(&1), Some(&1));
    assert!(tally.get(&2).copied().unwrap_or(0) <= 1);
}

// ---------------------------------------------------------------------
// Cross-substrate fault regression: the World knobs are armed per
// network, so the SAME chaos recipe must land on every substrate kind —
// the original MBX pipes, real TCP sockets, and the PR-10 SHM ring and
// UDP datagram substrates alike. Exercised at the raw
// `create_listener`/`connect` channel level so no LCM retransmission can
// mask a knob a substrate forgot to honor.
// ---------------------------------------------------------------------

/// One listener/dialer channel pair on a fresh world of the given kind.
/// SHM networks are single-machine by construction (co-location is the
/// whole point), so the SHM pair dials from the listening machine itself.
fn raw_pair(
    kind: NetKind,
) -> (
    World,
    ntcs::NetworkId,
    Box<dyn IpcsChannel>,
    Box<dyn IpcsChannel>,
) {
    let world = World::new();
    let net = world.add_network(kind, "fault-lab");
    let host = world.add_machine(MachineType::Sun, "host", &[net]).unwrap();
    let dialer = if kind == NetKind::Shm {
        host
    } else {
        world.add_machine(MachineType::Vax, "peer", &[net]).unwrap()
    };
    let (addr, listener) = world.create_listener(host, net, "svc").unwrap();
    // UDP completes a rendezvous handshake inside accept, so accept must
    // run concurrently with the dial (harmless for the other kinds).
    let acceptor =
        std::thread::spawn(move || listener.accept(Some(Duration::from_secs(5))).unwrap());
    let tx = world.connect(dialer, &addr).unwrap();
    let rx = acceptor.join().unwrap();
    (world, net, tx, rx)
}

#[test]
fn fault_knobs_apply_uniformly_across_substrates() {
    const RT: Option<Duration> = Some(Duration::from_millis(1500));
    for kind in [NetKind::Mbx, NetKind::Tcp, NetKind::Udp, NetKind::Shm] {
        let (world, net, tx, rx) = raw_pair(kind);

        // Baseline: the healthy link delivers verbatim.
        tx.send(Bytes::from_static(b"baseline")).unwrap();
        assert_eq!(&rx.recv(RT).unwrap()[..], b"baseline", "{kind:?}");

        // drop_next_frames: exactly the next frame vanishes, silently
        // (send still returns Ok), and the one after it gets through.
        world.drop_next_frames(net, 1).unwrap();
        tx.send(Bytes::from_static(b"swallowed")).unwrap();
        let mut after_drop = None;
        // UDP datagrams can also be lost by the kernel; resending the
        // follow-up is fine — the armed count only hits the first frame.
        for _ in 0..3 {
            tx.send(Bytes::from_static(b"survivor")).unwrap();
            if let Ok(f) = rx.recv(RT) {
                after_drop = Some(f);
                break;
            }
        }
        let after_drop = after_drop.expect("frame after the armed drop must arrive");
        assert_eq!(
            &after_drop[..],
            b"survivor",
            "{kind:?}: the armed drop must swallow exactly the next frame"
        );

        // corrupt_next_frames: one byte flipped in flight. Substrates with
        // per-frame integrity checks (UDP) discard the frame — loss — while
        // the in-memory/stream substrates deliver the garbled bytes upward.
        world.corrupt_next_frames(net, 1).unwrap();
        let payload = Bytes::from_static(b"payload-integrity");
        tx.send(payload.clone()).unwrap();
        if kind == NetKind::Udp {
            let mut after_corrupt = None;
            for _ in 0..3 {
                tx.send(Bytes::from_static(b"post-corrupt")).unwrap();
                if let Ok(f) = rx.recv(RT) {
                    after_corrupt = Some(f);
                    break;
                }
            }
            assert_eq!(
                &after_corrupt.expect("frame after the corrupted one must arrive")[..],
                b"post-corrupt",
                "udp: a corrupted datagram must fail its checksum and vanish"
            );
        } else {
            let garbled = rx.recv(RT).unwrap();
            assert_eq!(garbled.len(), payload.len(), "{kind:?}");
            assert_ne!(
                &garbled[..],
                &payload[..],
                "{kind:?}: the armed corruption must garble the frame"
            );
        }

        // dup_next_frames: the next frame is delivered twice, back to
        // back. TCP is exempt by design — duplicating frames inside a
        // byte stream would break stream semantics, and the stream
        // substrate never implemented the knob.
        if kind != NetKind::Tcp {
            world.dup_next_frames(net, 1).unwrap();
            tx.send(Bytes::from_static(b"twin")).unwrap();
            assert_eq!(&rx.recv(RT).unwrap()[..], b"twin", "{kind:?}");
            assert_eq!(
                &rx.recv(RT).unwrap()[..],
                b"twin",
                "{kind:?}: the armed dup must deliver a second copy"
            );
        }

        // set_latency: delivery still happens, measurably delayed.
        world.set_latency(net, Duration::from_millis(60)).unwrap();
        let t0 = Instant::now();
        tx.send(Bytes::from_static(b"delayed")).unwrap();
        let f = rx.recv(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(&f[..], b"delayed", "{kind:?}");
        assert!(
            t0.elapsed() >= Duration::from_millis(40),
            "{kind:?}: injected latency must delay delivery (saw {:?})",
            t0.elapsed()
        );
        world.set_latency(net, Duration::ZERO).unwrap();

        // And the link is healthy again once every knob is disarmed.
        tx.send(Bytes::from_static(b"healed")).unwrap();
        assert_eq!(&rx.recv(RT).unwrap()[..], b"healed", "{kind:?}");
    }
}
