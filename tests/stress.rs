//! Concurrency and volume stress: many modules, interleaved conversations,
//! large payloads through gateway chains, and queued-message fairness.

use std::time::Duration;

use ntcs::NetKind;
use ntcs_repro::messages::{Answer, Ask, Bulk};
use ntcs_repro::scenarios::{line_internet, single_net};

const T: Option<Duration> = Some(Duration::from_secs(20));

#[test]
fn many_clients_one_server() {
    let lab = single_net(4, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.machines[0], "hub").unwrap();
    const CLIENTS: usize = 8;
    const PER_CLIENT: u32 = 25;

    let server_thread = std::thread::spawn(move || {
        for _ in 0..(CLIENTS as u32 * PER_CLIENT) {
            let m = server.receive(T).unwrap();
            let a: Ask = m.decode().unwrap();
            server
                .reply(
                    &m,
                    &Answer {
                        n: a.n,
                        body: a.body,
                    },
                )
                .unwrap();
        }
        server
    });

    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let testbed = &lab.testbed;
        let machine = lab.machines[1 + (c % 3)];
        let commod = testbed.module(machine, &format!("client-{c}")).unwrap();
        clients.push(std::thread::spawn(move || {
            let dst = commod.locate("hub").unwrap();
            for i in 0..PER_CLIENT {
                let tag = format!("{c}:{i}");
                let reply = commod
                    .send_receive(
                        dst,
                        &Ask {
                            n: i,
                            body: tag.clone(),
                        },
                        T,
                    )
                    .unwrap();
                let a: Answer = reply.decode().unwrap();
                assert_eq!(a.n, i);
                assert_eq!(a.body, tag, "replies must not cross conversations");
            }
        }));
    }
    for c in clients {
        c.join().unwrap();
    }
    let server = server_thread.join().unwrap();
    assert!(server.metrics().circuits_accepted >= CLIENTS as u64);
}

#[test]
fn megabyte_payload_through_two_gateways_over_tcp() {
    let lab = line_internet(3, NetKind::Tcp).unwrap();
    let server = lab
        .testbed
        .module(lab.edge_machines[2], "big-sink")
        .unwrap();
    let client = lab.testbed.module(lab.edge_machines[0], "big-src").unwrap();
    let dst = client.locate("big-sink").unwrap();
    // 256k u32 words = 1 MiB native image.
    let msg = Bulk::sized(1, 256 * 1024);
    client.send(dst, &msg).unwrap();
    let got = server.receive(T).unwrap();
    let decoded: Bulk = got.decode().unwrap();
    assert_eq!(decoded.words.len(), msg.words.len());
    assert_eq!(decoded.words[123_456], msg.words[123_456]);
}

#[test]
fn wait_reply_leaves_unrelated_messages_queued() {
    // A server that interleaves unsolicited pushes with the reply: the
    // synchronous exchange must pluck only its own reply, preserving the
    // rest in order.
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let server = lab.testbed.module(lab.machines[1], "pusher").unwrap();
    let client = lab.testbed.module(lab.machines[0], "asker").unwrap();
    let dst = client.locate("pusher").unwrap();
    let client_uadd = client.my_uadd();

    let server_thread = std::thread::spawn(move || {
        let m = server.receive(T).unwrap();
        // Two unsolicited pushes first…
        server
            .send(
                client_uadd,
                &Ask {
                    n: 100,
                    body: "push-1".into(),
                },
            )
            .unwrap();
        server
            .send(
                client_uadd,
                &Ask {
                    n: 101,
                    body: "push-2".into(),
                },
            )
            .unwrap();
        // …then the actual reply.
        server
            .reply(
                &m,
                &Answer {
                    n: 7,
                    body: "the reply".into(),
                },
            )
            .unwrap();
    });

    let reply = client
        .send_receive(
            dst,
            &Ask {
                n: 7,
                body: String::new(),
            },
            T,
        )
        .unwrap();
    assert_eq!(reply.decode::<Answer>().unwrap().body, "the reply");
    // The pushes are still there, in order.
    let p1 = client.receive(T).unwrap().decode::<Ask>().unwrap();
    let p2 = client.receive(T).unwrap().decode::<Ask>().unwrap();
    assert_eq!((p1.n, p2.n), (100, 101));
    server_thread.join().unwrap();
}

#[test]
fn datagrams_cross_gateway_chains() {
    // The connectionless protocol rides the same IVCs (§2.2), so casts work
    // across the internet too.
    let lab = line_internet(2, NetKind::Mbx).unwrap();
    let server = lab
        .testbed
        .module(lab.edge_machines[1], "dgram-sink")
        .unwrap();
    let client = lab
        .testbed
        .module(lab.edge_machines[0], "dgram-src")
        .unwrap();
    let dst = client.locate("dgram-sink").unwrap();
    client
        .cast(
            dst,
            &Ask {
                n: 42,
                body: "datagram".into(),
            },
        )
        .unwrap();
    let got = server.receive(T).unwrap();
    assert!(got.connectionless());
    assert_eq!(got.decode::<Ask>().unwrap().n, 42);
}

#[test]
fn interleaved_bidirectional_conversations() {
    // A and B are simultaneously client and server of each other.
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let a = lab.testbed.module(lab.machines[0], "alpha").unwrap();
    let b = lab.testbed.module(lab.machines[1], "beta").unwrap();
    let a_addr = a.my_uadd();
    let b_addr = b.my_uadd();

    let tb = std::thread::spawn(move || {
        for i in 0..10u32 {
            // Serve one request…
            let m = b.receive(T).unwrap();
            let q: Ask = m.decode().unwrap();
            b.reply(
                &m,
                &Answer {
                    n: q.n,
                    body: String::new(),
                },
            )
            .unwrap();
            // …and push one of its own.
            b.send(
                a_addr,
                &Ask {
                    n: 1000 + i,
                    body: String::new(),
                },
            )
            .unwrap();
        }
    });

    let mut pushes = 0;
    for i in 0..10u32 {
        let reply = a
            .send_receive(
                b_addr,
                &Ask {
                    n: i,
                    body: String::new(),
                },
                T,
            )
            .unwrap();
        assert_eq!(reply.decode::<Answer>().unwrap().n, i);
    }
    // Drain B's pushes.
    while let Ok(m) = a.receive(Some(Duration::from_millis(300))) {
        let q: Ask = m.decode().unwrap();
        assert!(q.n >= 1000);
        pushes += 1;
    }
    assert_eq!(pushes, 10);
    tb.join().unwrap();
}
