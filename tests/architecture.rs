//! Figures F2-1 … F2-4: the paper's architecture diagrams, asserted against
//! the live system's introspection.

use ntcs::{NetKind, UAdd};
use ntcs_repro::messages::Ask;
use ntcs_repro::scenarios::single_net;
use std::time::Duration;

#[test]
fn fig_2_1_application_sees_only_the_commod() {
    // "To the application, the ComMod is the NTCS": the entire public
    // surface a module touches is the ComMod value — the report's top layer
    // is ALI, bound to the application module.
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let module = lab.testbed.module(lab.machines[1], "app-module").unwrap();
    let report = module.architecture();
    assert_eq!(report.module, "app-module");
    assert_eq!(report.layers[0].name, "ALI");
    assert!(report.layers[0].detail.contains("app-module"));
}

#[test]
fn fig_2_2_nucleus_internal_layering() {
    // LCM over IP over ND, with the IPCS below.
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let module = lab.testbed.module(lab.machines[1], "probe").unwrap();
    let names = module.architecture().layer_names();
    let lcm = names.iter().position(|n| *n == "LCM").unwrap();
    let ip = names.iter().position(|n| *n == "IP").unwrap();
    let nd = names.iter().position(|n| *n == "ND").unwrap();
    let ipcs = names.iter().position(|n| *n == "IPCS").unwrap();
    assert!(lcm < ip && ip < nd && nd < ipcs);
}

#[test]
fn fig_2_3_nsp_sits_between_ali_and_the_nucleus() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let module = lab.testbed.module(lab.machines[1], "probe").unwrap();
    let names = module.architecture().layer_names();
    let ali = names.iter().position(|n| *n == "ALI").unwrap();
    let nsp = names.iter().position(|n| *n == "NSP").unwrap();
    let lcm = names.iter().position(|n| *n == "LCM").unwrap();
    assert!(ali < nsp && nsp < lcm);
}

#[test]
fn fig_2_4_full_commod_stack_renders() {
    let lab = single_net(2, NetKind::Mbx).unwrap();
    let module = lab.testbed.module(lab.machines[1], "render").unwrap();
    // Generate some live detail first.
    let peer = lab.testbed.module(lab.machines[0], "peer").unwrap();
    let dst = module.locate("peer").unwrap();
    module
        .send(
            dst,
            &Ask {
                n: 1,
                body: String::new(),
            },
        )
        .unwrap();
    peer.receive(Some(Duration::from_secs(5))).unwrap();

    let report = module.architecture();
    assert_eq!(
        report.layer_names(),
        vec!["ALI", "NSP", "LCM", "IP", "ND", "IPCS"]
    );
    let rendered = report.to_string();
    for needle in [
        "Application Level Interface",
        "Name Service Protocol",
        "Logical Connection Maintenance",
        "Internet Protocol",
        "Network Dependent",
        "render",
        "circuits opened",
    ] {
        assert!(
            rendered.contains(needle),
            "missing {needle:?} in:\n{rendered}"
        );
    }
    // Live details reflect the traffic that actually happened: one circuit
    // to the Name Server (resolution) plus one to the peer.
    let lcm = &report.layers[2];
    assert!(lcm.detail.contains("2 circuits opened"), "{}", lcm.detail);
}

#[test]
fn name_server_is_itself_a_module_on_the_nucleus() {
    // §3.1: "the naming service is nothing more than an application built
    // on the Nucleus."
    let lab = single_net(1, NetKind::Mbx).unwrap();
    let ns = lab.testbed.name_server().unwrap();
    assert_eq!(ns.uadd(), UAdd::NAME_SERVER);
    // Its Nucleus accepted circuits like any module's.
    let c = lab.testbed.module(lab.machines[0], "visitor").unwrap();
    let _ = c.locate("visitor").unwrap();
    assert!(ns.nucleus().metrics().snapshot().circuits_accepted >= 1);
}
