//! Naming at scale (§3.2, §7): the sharded Name Service keeps per-shard
//! load balanced over a million registrations, survives relocation churn
//! with forwarding chains intact, and the leased client-side cache keeps
//! hit-rate invariants observable through the metrics registry.

use std::time::Duration;

use ntcs::{AttrSet, MachineType, NetKind};
use ntcs_naming::cache::{shard_primary_server_id, shard_primary_uadd};
use ntcs_naming::{NameDb, ShardMap};
use ntcs_repro::messages::Ask;
use ntcs_repro::scenarios::sharded_net;

const T: Option<Duration> = Some(Duration::from_secs(10));

/// Registers 1M+ names into a 4-shard database set, checks both routings
/// (by name hash and by minted UAdd) agree, per-shard balance stays within
/// 5% of even, and a churned subset keeps resolvable forwarding chains.
#[test]
fn million_names_balance_across_shards_and_survive_churn() {
    const SHARDS: usize = 4;
    const NAMES: usize = 1_000_000;

    let map = ShardMap::new(
        (0..SHARDS)
            .map(|s| vec![shard_primary_uadd(s)])
            .collect::<Vec<_>>(),
    );
    let mut dbs: Vec<NameDb> = (0..SHARDS)
        .map(|s| NameDb::new(shard_primary_server_id(s)))
        .collect();

    let mut uadds = Vec::with_capacity(NAMES);
    for i in 0..NAMES {
        let name = format!("mod-{i}");
        let shard = map.shard_for_name(&name);
        let (uadd, _gen) = dbs[shard].register(
            AttrSet::named(&name).unwrap(),
            MachineType::Sun,
            Vec::new(),
            false,
            Vec::new(),
            None,
        );
        // UAdds are minted by the shard the name hashes to, so routing a
        // later UAdd lookup lands on the same shard as the registration.
        assert_eq!(map.shard_for_uadd(uadd), shard, "routing split for {name}");
        uadds.push(uadd);
    }

    // Per-shard balance: FNV-1a placement stays within 5% of even.
    let mean = NAMES / SHARDS;
    let tolerance = mean / 20;
    for (s, db) in dbs.iter().enumerate() {
        let count = db.len();
        assert!(
            count.abs_diff(mean) <= tolerance,
            "shard {s} holds {count} records, outside {mean}±{tolerance}"
        );
    }

    // Relocation churn on a spread-out subset: move each twice, then check
    // the forwarding chain points at the live incarnation and resolution
    // prefers it.
    for i in (0..NAMES).step_by(997) {
        let name = format!("mod-{i}");
        let shard = map.shard_for_name(&name);
        let first = uadds[i];
        let (second, _) = dbs[shard].register(
            AttrSet::named(&name).unwrap(),
            MachineType::Vax,
            Vec::new(),
            false,
            Vec::new(),
            Some(first),
        );
        let (third, _) = dbs[shard].register(
            AttrSet::named(&name).unwrap(),
            MachineType::Apollo,
            Vec::new(),
            false,
            Vec::new(),
            Some(second),
        );
        let db = &dbs[shard];
        assert!(!db.lookup(first).unwrap().alive, "{name}: old stayed alive");
        assert!(!db.lookup(second).unwrap().alive);
        assert!(db.lookup(third).unwrap().alive);
        // Forwarding from any stale incarnation reaches the newest.
        assert_eq!(db.forwarding(first).unwrap(), third, "{name}");
        assert_eq!(db.forwarding(second).unwrap(), third, "{name}");
        // Name resolution returns only the live incarnation.
        let query = ntcs::AttrQuery::by_name(&name).unwrap();
        assert_eq!(db.resolve(&query), Some(third), "{name}");
    }
}

/// End to end on a live 3-shard testbed: lookups route to the right shard,
/// relocation churn never strands a client, and the leased cache's
/// hit/miss/invalidation counters surface through the metrics registry.
#[test]
fn sharded_lookups_survive_relocation_churn_with_cache_metrics() {
    const N: usize = 12;
    let lab = sharded_net(4, 3, 0, NetKind::Mbx).unwrap();
    let tb = &lab.testbed;
    assert_eq!(tb.shard_count(), 3);

    let mut handles = Vec::new();
    for i in 0..N {
        handles.push(tb.module(lab.machines[i % 4], &format!("svc-{i}")).unwrap());
    }
    let client = tb.module(lab.machines[0], "cli").unwrap();

    // Every name resolves through its home shard; the FNV placement of
    // svc-0..svc-11 over 3 shards is perfectly even (4 names per shard),
    // so every shard must hold records.
    let map = tb.shard_map();
    let mut per_shard = vec![0usize; 3];
    for (i, h) in handles.iter().enumerate() {
        let name = format!("svc-{i}");
        assert_eq!(client.locate(&name).unwrap(), h.my_uadd(), "{name}");
        per_shard[map.shard_for_name(&name)] += 1;
    }
    assert_eq!(per_shard, vec![4, 4, 4], "FNV placement drifted");
    let counts = tb.shard_record_counts();
    assert_eq!(counts.len(), 3);
    for (s, count) in counts.iter().enumerate() {
        assert!(*count >= 4, "shard {s} holds only {count} records");
    }

    // Warm the client's leased cache: two sends per service — the second
    // rides the open circuit, and the resolver cache absorbs the NS-server
    // resolutions themselves (each shard primary resolves as a lease hit
    // off its preload; each service costs exactly one cold miss).
    for (i, h) in handles.iter().enumerate() {
        let dst = h.my_uadd();
        for n in 0..2 {
            client
                .send(
                    dst,
                    &Ask {
                        n,
                        body: format!("warm-{i}"),
                    },
                )
                .unwrap();
            assert_eq!(
                h.receive(T).unwrap().decode::<Ask>().unwrap().body,
                format!("warm-{i}")
            );
        }
    }
    let warm = client.metrics();
    assert!(
        warm.ns_cache_hits >= tb.shard_count() as u64,
        "leases never served: {warm:?}"
    );
    assert!(
        warm.ns_cache_misses >= N as u64,
        "cold resolves unaccounted: {warm:?}"
    );
    assert!(
        !client.nsp().cache().is_empty(),
        "NSP-side cache never populated"
    );
    // The registry renders the cache counters for operators.
    let rendered: Vec<&str> = warm.counters().iter().map(|(k, _)| *k).collect();
    for key in ["ns_cache_hits", "ns_cache_misses", "ns_invalidations"] {
        assert!(rendered.contains(&key), "registry missing {key}");
    }

    // Relocation churn: move half the services to the next machine. The
    // shard primary must push lease invalidations to the client, and
    // post-churn lookups must land on the live incarnation.
    let mut churned = Vec::new();
    for (i, h) in handles.into_iter().enumerate() {
        if i < N / 2 {
            let old = h.my_uadd();
            let moved = h.relocate_to(lab.machines[(i + 1) % 4]).unwrap();
            assert_ne!(moved.my_uadd(), old);
            churned.push(moved);
        } else {
            churned.push(h);
        }
    }
    for (i, h) in churned.iter().enumerate() {
        let name = format!("svc-{i}");
        assert_eq!(
            client.locate(&name).unwrap(),
            h.my_uadd(),
            "post-churn {name}"
        );
    }
    // Invalidations were pushed for the leases the client held; give the
    // pump a bounded moment to drain them.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if client.metrics().ns_invalidations >= 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no lease invalidation ever arrived: {:?}",
            client.metrics()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Messages to the relocated services flow again (forwarding + fresh
    // resolution after invalidation).
    for (i, h) in churned.iter().enumerate().take(N / 2) {
        client
            .send(
                h.my_uadd(),
                &Ask {
                    n: 99,
                    body: format!("post-churn-{i}"),
                },
            )
            .unwrap();
        assert_eq!(h.receive(T).unwrap().decode::<Ask>().unwrap().n, 99);
    }
}
