//! Property-based tests over the NTCS core data structures and invariants:
//! wire codecs (shift/packed/image/header), naming structures, the name
//! database, and route computation on random topologies.

use proptest::prelude::*;

use ntcs::{AttrQuery, AttrSet, MachineType, NetworkId, PhysAddr, UAdd};
use ntcs_naming::cache::{shard_primary_server_id, shard_primary_uadd, shard_replica_uadd};
use ntcs_naming::protocol::NsInvalidate;
use ntcs_naming::{CacheProbe, NameCache, NameDb, ShardMap};
use ntcs_nucleus::ResolvedModule;
use ntcs_wire::bytes::Bytes;
use ntcs_wire::pack::{pack_to_vec, unpack_from_slice, Blob};
use ntcs_wire::{
    decode_batch, decode_batch_frames, encode_batch_into, encode_payload, image, ConvMode, Frame,
    FrameHeader, FrameType, InboundPayload, Message, PackReader, PackWriter, ShiftReader,
    ShiftWriter,
};

fn machine_type() -> impl Strategy<Value = MachineType> {
    prop_oneof![
        Just(MachineType::Vax),
        Just(MachineType::Sun),
        Just(MachineType::Apollo),
        Just(MachineType::M68k),
    ]
}

fn frame_type() -> impl Strategy<Value = FrameType> {
    prop_oneof![
        Just(FrameType::LvcOpen),
        Just(FrameType::LvcOpenAck),
        Just(FrameType::IvcOpen),
        Just(FrameType::IvcOpenAck),
        Just(FrameType::Data),
        Just(FrameType::Close),
        Just(FrameType::Datagram),
        Just(FrameType::Ping),
        Just(FrameType::Pong),
        Just(FrameType::IvcAbort),
    ]
}

/// Attribute tokens: non-empty, free of the reserved characters.
fn token() -> impl Strategy<Value = String> {
    "[a-z0-9_.:-]{1,12}"
}

/// A complete random frame of any non-container type — the kind of frame
/// that may travel inside a batch block.
fn member_frame() -> impl Strategy<Value = Frame> {
    (
        frame_type(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        machine_type(),
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(ft, src, dst, msg_id, mt, payload)| {
            let mut h = FrameHeader::new(ft, UAdd::from_raw(src), UAdd::from_raw(dst), mt);
            h.msg_id = msg_id;
            Frame::new(h, Bytes::from(payload))
        })
}

proptest! {
    #[test]
    fn shift_u32_round_trips(values in proptest::collection::vec(any::<u32>(), 0..64)) {
        let mut w = ShiftWriter::new();
        for &v in &values {
            w.put_u32(v);
        }
        let bytes = w.into_bytes();
        prop_assert_eq!(bytes.len(), values.len() * 4);
        let mut r = ShiftReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(r.get_u32().unwrap(), v);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn shift_u64_round_trips(values in proptest::collection::vec(any::<u64>(), 0..32)) {
        let mut w = ShiftWriter::new();
        for &v in &values {
            w.put_u64(v);
        }
        let bytes = w.into_bytes();
        let mut r = ShiftReader::new(&bytes);
        for &v in &values {
            prop_assert_eq!(r.get_u64().unwrap(), v);
        }
    }

    #[test]
    fn bit_fields_round_trip(a in 0u32..16, b in 0u32..2, c in 0u32..1024, d in 0u32..65536) {
        let mut w = ShiftWriter::new();
        w.put_bit_fields(&[(a, 4), (b, 1), (c, 10), (d, 16)]).unwrap();
        let bytes = w.into_bytes();
        let mut r = ShiftReader::new(&bytes);
        let out = r.get_bit_fields(&[4, 1, 10, 16]).unwrap();
        prop_assert_eq!(out, vec![a, b, c, d]);
    }

    #[test]
    fn packed_scalars_round_trip(
        u in any::<u64>(),
        i in any::<i64>(),
        f in any::<f64>(),
        b in any::<bool>(),
        s in "\\PC{0,40}",
        blob in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assert_eq!(unpack_from_slice::<u64>(&pack_to_vec(&u)).unwrap(), u);
        prop_assert_eq!(unpack_from_slice::<i64>(&pack_to_vec(&i)).unwrap(), i);
        let g = unpack_from_slice::<f64>(&pack_to_vec(&f)).unwrap();
        prop_assert_eq!(g.to_bits(), f.to_bits());
        prop_assert_eq!(unpack_from_slice::<bool>(&pack_to_vec(&b)).unwrap(), b);
        prop_assert_eq!(unpack_from_slice::<String>(&pack_to_vec(&s.clone())).unwrap(), s);
        prop_assert_eq!(
            unpack_from_slice::<Blob>(&pack_to_vec(&Blob(blob.clone()))).unwrap(),
            Blob(blob)
        );
    }

    #[test]
    fn packed_vectors_and_options_round_trip(
        v in proptest::collection::vec(any::<u32>(), 0..32),
        o in proptest::option::of(any::<i32>()),
    ) {
        prop_assert_eq!(unpack_from_slice::<Vec<u32>>(&pack_to_vec(&v)).unwrap(), v);
        prop_assert_eq!(unpack_from_slice::<Option<i32>>(&pack_to_vec(&o)).unwrap(), o);
    }

    #[test]
    fn packed_truncation_never_panics(
        s in "\\PC{0,20}",
        cut in 0usize..100,
    ) {
        let bytes = pack_to_vec(&s);
        let cut = cut.min(bytes.len());
        // Any prefix either fails cleanly or (cut == len) succeeds.
        let _ = unpack_from_slice::<String>(&bytes[..cut]);
    }

    #[test]
    fn image_round_trips_between_compatible_machines(
        a in machine_type(),
        b in machine_type(),
        v in any::<u64>(),
        s in "\\PC{0,24}",
        vec in proptest::collection::vec(any::<i32>(), 0..16),
    ) {
        prop_assume!(a.image_compatible(b));
        prop_assert_eq!(
            image::image_from_slice::<u64>(&image::image_to_vec(&v, a), b).unwrap(), v);
        prop_assert_eq!(
            image::image_from_slice::<String>(&image::image_to_vec(&s.clone(), a), b).unwrap(), s);
        prop_assert_eq!(
            image::image_from_slice::<Vec<i32>>(&image::image_to_vec(&vec.clone(), a), b).unwrap(),
            vec);
    }

    #[test]
    fn image_across_incompatible_machines_swaps_u32(v in any::<u32>()) {
        let img = image::image_to_vec(&v, MachineType::Vax);
        let got = image::image_from_slice::<u32>(&img, MachineType::Sun).unwrap();
        prop_assert_eq!(got, v.swap_bytes());
    }

    #[test]
    fn conversion_mode_matches_compatibility(a in machine_type(), b in machine_type()) {
        let mode = ConvMode::select(a, b);
        prop_assert_eq!(mode == ConvMode::Image, a.image_compatible(b));
        // Symmetry.
        prop_assert_eq!(mode, ConvMode::select(b, a));
    }

    #[test]
    fn frame_header_round_trips(
        ft in frame_type(),
        src in any::<u64>(),
        dst in any::<u64>(),
        msg_id in any::<u64>(),
        reply_to in any::<u64>(),
        mt in machine_type(),
        error_code in any::<u32>(),
        aux in any::<u32>(),
        packed in any::<bool>(),
        reply_expected in any::<bool>(),
        connectionless in any::<bool>(),
    ) {
        let mut h = FrameHeader::new(ft, UAdd::from_raw(src), UAdd::from_raw(dst), mt);
        h.msg_id = msg_id;
        h.reply_to = reply_to;
        h.error_code = error_code;
        h.aux = aux;
        h.flags.set_conv_mode(if packed { ConvMode::Packed } else { ConvMode::Image });
        h.flags.reply_expected = reply_expected;
        h.flags.connectionless = connectionless;
        let bytes = h.to_shift();
        prop_assert_eq!(bytes.len(), ntcs_wire::HEADER_LEN);
        prop_assert_eq!(FrameHeader::from_shift(&bytes).unwrap(), h.clone());
        // The character-format baseline agrees semantically.
        prop_assert_eq!(FrameHeader::from_packed(&h.to_packed()).unwrap(), h);
    }

    #[test]
    fn frame_round_trips(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let h = FrameHeader::new(
            FrameType::Data,
            UAdd::from_raw(1),
            UAdd::from_raw(2),
            MachineType::Sun,
        );
        let f = Frame::new(h, payload.into());
        prop_assert_eq!(Frame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn frame_decode_never_panics_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Frame::decode(&garbage);
        let _ = FrameHeader::from_shift(&garbage);
        let _ = FrameHeader::from_packed(&garbage);
    }

    #[test]
    fn attrs_wire_round_trips(pairs in proptest::collection::btree_map(token(), token(), 0..6)) {
        let mut a = AttrSet::new();
        for (k, v) in &pairs {
            a.set(k, v).unwrap();
        }
        prop_assert_eq!(AttrSet::from_wire(&a.to_wire()).unwrap(), a);
    }

    #[test]
    fn attr_query_semantics(
        pairs in proptest::collection::btree_map(token(), token(), 1..5),
    ) {
        let mut a = AttrSet::new();
        for (k, v) in &pairs {
            a.set(k, v).unwrap();
        }
        // A query built from any subset of the attributes matches.
        let mut q = AttrQuery::any();
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i % 2 == 0 {
                q = q.and_equals(k, v).unwrap();
            } else {
                q = q.and_exists(k).unwrap();
            }
        }
        prop_assert!(q.matches(&a));
        prop_assert_eq!(AttrQuery::from_wire(&q.to_wire()).unwrap(), q.clone());
        // Adding a constraint on an absent key breaks the match.
        let q2 = q.and_exists("definitely.absent.key").unwrap();
        prop_assert!(!q2.matches(&a));
    }

    #[test]
    fn phys_addr_opaque_round_trips(
        net in 0u32..64,
        path in "/[a-z0-9/:._-]{1,30}",
        host_octet in 1u8..255,
        port in any::<u16>(),
    ) {
        let m = PhysAddr::Mbx { network: NetworkId(net), path };
        prop_assert_eq!(PhysAddr::from_opaque(&m.to_opaque()).unwrap(), m);
        let t = PhysAddr::Tcp {
            network: NetworkId(net),
            host: format!("127.0.0.{host_octet}"),
            port,
        };
        prop_assert_eq!(PhysAddr::from_opaque(&t.to_opaque()).unwrap(), t);
    }

    #[test]
    fn name_db_invariants_under_random_ops(
        ops in proptest::collection::vec((0u8..4, 0usize..4, token()), 1..40),
    ) {
        let mut db = NameDb::new(0);
        let mut registered: Vec<UAdd> = Vec::new();
        for (op, idx, name) in ops {
            match op {
                // Register a fresh module under `name`.
                0 => {
                    let attrs = AttrSet::named(&name).unwrap();
                    let (u, _) = db.register(
                        attrs,
                        MachineType::Vax,
                        vec![PhysAddr::Mbx { network: NetworkId(0), path: format!("/m/{name}") }],
                        false,
                        vec![],
                        None,
                    );
                    registered.push(u);
                }
                // Relocate a previously registered module.
                1 if !registered.is_empty() => {
                    let prev = registered[idx % registered.len()];
                    let attrs = db.lookup(prev).unwrap().attrs.clone();
                    let (u, _) = db.register(
                        attrs,
                        MachineType::Sun,
                        vec![PhysAddr::Mbx { network: NetworkId(0), path: format!("/m2/{name}") }],
                        false,
                        vec![],
                        Some(prev),
                    );
                    registered.push(u);
                }
                // Deregister.
                2 if !registered.is_empty() => {
                    let u = registered[idx % registered.len()];
                    db.deregister(u);
                }
                _ => {}
            }
            // Invariant 1: resolve always returns a live record matching the query.
            let q = AttrQuery::by_name(&name).unwrap();
            if let Some(u) = db.resolve(&q) {
                let rec = db.lookup(u).unwrap();
                prop_assert!(rec.alive);
                prop_assert!(q.matches(&rec.attrs));
                // Invariant 2: it is the newest live generation of that name.
                for other in db.records() {
                    if other.alive && other.name() == rec.name() {
                        prop_assert!(other.generation <= rec.generation
                            || (other.generation == rec.generation));
                    }
                }
            }
            // Invariant 3: forwarding never returns a dead or older module.
            for &u in &registered {
                if let Ok(new) = db.forwarding(u) {
                    let old_gen = db.lookup(u).unwrap().generation;
                    let rec = db.lookup(new).unwrap();
                    prop_assert!(rec.alive);
                    prop_assert!(rec.generation > old_gen);
                }
            }
        }
    }

    #[test]
    fn routes_on_random_topologies_are_valid(
        n_nets in 2u32..7,
        gateways in proptest::collection::vec((0u32..7, 0u32..7), 0..8),
        src_net in 0u32..7,
        dst_net in 0u32..7,
    ) {
        let src_net = NetworkId(src_net % n_nets);
        let dst_net = NetworkId(dst_net % n_nets);
        let mut db = NameDb::new(0);
        for (i, (a, b)) in gateways.iter().enumerate() {
            let (a, b) = (NetworkId(a % n_nets), NetworkId(b % n_nets));
            if a == b {
                continue;
            }
            db.register(
                AttrSet::named(&format!("gw{i}")).unwrap(),
                MachineType::Apollo,
                vec![
                    PhysAddr::Mbx { network: a, path: format!("/gw{i}/a") },
                    PhysAddr::Mbx { network: b, path: format!("/gw{i}/b") },
                ],
                true,
                vec![a, b],
                None,
            );
        }
        let (dst, _) = db.register(
            AttrSet::named("target").unwrap(),
            MachineType::Vax,
            vec![PhysAddr::Mbx { network: dst_net, path: "/t".into() }],
            false,
            vec![],
            None,
        );
        match db.route(&[src_net], dst) {
            Ok((hops, dst_phys, _mt)) => {
                prop_assert_eq!(dst_phys.network(), dst_net);
                // Walk the chain: each hop's entry must be on the current
                // network, and the gateway must join it to the next one.
                let mut cur = src_net;
                for hop in &hops {
                    prop_assert_eq!(hop.entry.network(), cur);
                    let gw = db.lookup(hop.gateway).unwrap();
                    prop_assert!(gw.is_gateway && gw.alive);
                    prop_assert!(gw.gateway_networks.contains(&cur));
                    // Advance to some other network this gateway joins that
                    // continues the chain (BFS guarantees a simple path; the
                    // next hop's entry network tells us where we land).
                    cur = if let Some(next_hop) = hops.iter().skip_while(|h| *h != hop).nth(1) {
                        next_hop.entry.network()
                    } else {
                        dst_net
                    };
                    prop_assert!(gw.gateway_networks.contains(&cur));
                }
                if hops.is_empty() {
                    prop_assert_eq!(cur, dst_net);
                }
            }
            Err(_) => {
                // No route claimed: verify by reachability that none exists.
                let mut reach = vec![src_net];
                let mut changed = true;
                while changed {
                    changed = false;
                    for gw in db.gateways() {
                        if gw.gateway_networks.iter().any(|n| reach.contains(n)) {
                            for &n in &gw.gateway_networks {
                                if !reach.contains(&n) {
                                    reach.push(n);
                                    changed = true;
                                }
                            }
                        }
                    }
                }
                prop_assert!(!reach.contains(&dst_net), "route missed but reachable");
            }
        }
    }

    #[test]
    fn boolean_queries_agree_with_brute_force(
        seed in 0u64..1000,
        q_and in prop_oneof![Just("AND"), Just(""), Just("OR")],
        t1 in prop_oneof![Just("retrieval"), Just("network"), Just("system"), Just("zzz")],
        t2 in prop_oneof![Just("index"), Just("gateway"), Just("query"), Just("module")],
        neg in any::<bool>(),
    ) {
        use ntcs_ursa::{BoolExpr, Corpus, InvertedIndex};
        let corpus = Corpus::generate(seed, 60, 15);
        let idx = InvertedIndex::build(corpus.docs());
        let q = if neg {
            format!("{t1} {q_and} NOT {t2}")
        } else {
            format!("{t1} {q_and} {t2}")
        };
        let expr = BoolExpr::parse(&q).unwrap();
        // Round-trips through the query language.
        prop_assert_eq!(&BoolExpr::parse(&expr.to_query()).unwrap(), &expr);
        let fast = idx.search_boolean(&expr);
        let slow: Vec<u32> = corpus
            .docs()
            .iter()
            .filter(|d| expr.matches_doc(d))
            .map(|d| d.id)
            .collect();
        prop_assert_eq!(fast, slow, "query {}", q);
    }

    #[test]
    fn boolean_parser_never_panics(input in "\\PC{0,60}") {
        let _ = ntcs_ursa::BoolExpr::parse(&input);
    }

    #[test]
    fn uadd_structure(server in 0u16..0x8000, raw in any::<u64>()) {
        let g = ntcs_addr::UAddGenerator::new(server);
        let u = g.generate();
        prop_assert!(u.is_permanent());
        prop_assert_eq!(u.server_id().unwrap(), server);
        // TAdd flag is the top bit, always.
        let v = UAdd::from_raw(raw);
        prop_assert_eq!(v.is_temporary(), raw >> 63 == 1);
    }

    #[test]
    fn backoff_schedules_are_monotone_and_jitter_bounded(
        max_attempts in 1u32..24,
        base_ms in 1u64..200,
        cap_ms in 1u64..2_000,
        jitter in 0.0f64..1.0,
        deadline_ms in 1u64..20_000,
        seed in any::<u64>(),
    ) {
        use std::time::Duration;
        let p = ntcs::RetryPolicy {
            max_attempts,
            base_backoff: Duration::from_millis(base_ms),
            max_backoff: Duration::from_millis(cap_ms),
            jitter,
            deadline: Duration::from_millis(deadline_ms),
            seed,
        };
        let delays: Vec<Duration> = p.schedule().collect();
        // Never more inter-attempt delays than retries.
        prop_assert!(delays.len() <= max_attempts.saturating_sub(1) as usize);
        // Monotone non-decreasing, except that the deadline cap may truncate
        // the final delay — and only the final one: a capped emit exhausts
        // the budget, so the iterator ends right after it.
        for (i, w) in delays.windows(2).enumerate() {
            let is_last = i + 2 == delays.len();
            let total: Duration = delays.iter().sum();
            prop_assert!(
                w[1] >= w[0] || (is_last && total == p.deadline),
                "schedule not monotone at {i}: {delays:?}"
            );
        }
        // Each delay lies within the jitter bounds of its nominal value —
        // jitter only ever *adds* — except where the deadline cap cuts the
        // tail short (only ever downward, and only once the budget is gone).
        let mut spent = Duration::ZERO;
        for (i, d) in delays.iter().enumerate() {
            let nominal = p.nominal_backoff(i as u32);
            let ceil = nominal.mul_f64(1.0 + jitter) + Duration::from_nanos(1);
            prop_assert!(*d <= ceil, "attempt {i}: {d:?} above jitter ceiling {ceil:?}");
            let capped_by_deadline = spent + *d >= p.deadline;
            prop_assert!(
                *d >= nominal || capped_by_deadline,
                "attempt {i}: {d:?} below nominal {nominal:?} without a deadline cap"
            );
            spent += *d;
        }
        // Total sleep time never exceeds the deadline budget.
        let total: Duration = delays.iter().sum();
        prop_assert!(total <= p.deadline, "{total:?} exceeds deadline {:?}", p.deadline);
    }

    #[test]
    fn header_v2_trace_words_round_trip(
        ft in frame_type(),
        trace_id in any::<u64>(),
        span in any::<u32>(),
        sent_at_us in any::<i64>(),
        reliable in any::<bool>(),
        aux in any::<u32>(),
    ) {
        let mut h = FrameHeader::new(ft, UAdd::from_raw(3), UAdd::from_raw(4), MachineType::Vax);
        h.trace_id = trace_id;
        h.span = span;
        h.sent_at_us = sent_at_us;
        h.flags.reliable = reliable;
        h.aux = aux;
        let bytes = h.to_shift();
        prop_assert_eq!(bytes.len(), ntcs_wire::HEADER_LEN);
        prop_assert_eq!(FrameHeader::from_shift(&bytes).unwrap(), h);
    }

    #[test]
    fn batch_codec_round_trips(
        frames in proptest::collection::vec(member_frame(), 1..10),
        mt in machine_type(),
    ) {
        let blocks: Vec<Bytes> = frames.iter().map(Frame::encode).collect();
        let mut buf = Vec::new();
        encode_batch_into(&blocks, mt, &mut buf).unwrap();
        let container = Frame::decode(&buf).unwrap();
        prop_assert_eq!(container.header.frame_type, FrameType::Batch);
        prop_assert_eq!(container.header.aux as usize, frames.len());
        // Raw member blocks survive byte-for-byte...
        let members = decode_batch(&container).unwrap();
        prop_assert_eq!(members.len(), blocks.len());
        for (m, b) in members.iter().zip(&blocks) {
            prop_assert_eq!(&m[..], &b[..]);
        }
        // ...and decode back to the original frames, in order.
        prop_assert_eq!(decode_batch_frames(&container).unwrap(), frames);
    }

    #[test]
    fn truncated_frames_always_err(f in member_frame(), cut in any::<usize>()) {
        let bytes = f.encode();
        let cut = cut % bytes.len();
        prop_assert!(Frame::decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn truncated_batches_always_err(
        frames in proptest::collection::vec(member_frame(), 1..6),
        cut in any::<usize>(),
    ) {
        let blocks: Vec<Bytes> = frames.iter().map(Frame::encode).collect();
        let mut buf = Vec::new();
        encode_batch_into(&blocks, MachineType::Sun, &mut buf).unwrap();
        let cut = cut % buf.len();
        prop_assert!(Frame::decode(&buf[..cut]).is_err());
    }

    #[test]
    fn corrupted_batch_blocks_never_panic(
        frames in proptest::collection::vec(member_frame(), 1..6),
        idx in any::<usize>(),
        bit in 0u8..8,
        duplicate in any::<bool>(),
    ) {
        let blocks: Vec<Bytes> = frames.iter().map(Frame::encode).collect();
        let mut buf = Vec::new();
        encode_batch_into(&blocks, MachineType::Apollo, &mut buf).unwrap();
        let i = idx % buf.len();
        if duplicate {
            // Duplicating a byte shifts everything after it — a classic
            // framing slip.
            let b = buf[i];
            buf.insert(i, b);
        } else {
            buf[i] ^= 1 << bit;
        }
        // Structural damage must surface as a clean Err; a flip that only
        // grazes a payload byte may still decode, but the result must stay
        // internally consistent. Nothing may panic.
        if let Ok(container) = Frame::decode(&buf) {
            if container.header.frame_type == FrameType::Batch {
                if let Ok(members) = decode_batch(&container) {
                    prop_assert_eq!(members.len(), container.header.aux as usize);
                }
                let _ = decode_batch_frames(&container);
            }
        }
    }

    #[test]
    fn corrupted_pack_streams_never_panic(
        u in any::<u64>(),
        s in "\\PC{0,24}",
        blob in proptest::collection::vec(any::<u8>(), 0..32),
        idx in any::<usize>(),
        bit in 0u8..8,
        mode in 0u8..3,
    ) {
        let mut w = PackWriter::new();
        w.put_unsigned(u).put_str(&s).put_bytes(&blob);
        let mut bytes = w.into_bytes();
        let i = idx % bytes.len();
        match mode {
            0 => bytes.truncate(i),
            1 => bytes[i] ^= 1 << bit,
            _ => {
                let b = bytes[i];
                bytes.insert(i, b);
            }
        }
        // Reads either reproduce a value or fail cleanly; the strict tag
        // discipline never panics on garbage.
        let mut r = PackReader::new(&bytes);
        let _ = r
            .get_unsigned()
            .and_then(|_| r.get_str())
            .and_then(|_| r.get_bytes());
    }

    #[test]
    fn pack_duplicated_tag_always_errs(s in "\\PC{0,16}") {
        let mut w = PackWriter::new();
        w.put_str(&s);
        let bytes = w.into_bytes();
        // Reading with the wrong tag expectation fails cleanly.
        prop_assert!(PackReader::new(&bytes).get_unsigned().is_err());
        // A duplicated tag byte leaves the spare tag where the length
        // digits should start — rejected, not misparsed.
        let mut dup = bytes.clone();
        dup.insert(0, dup[0]);
        prop_assert!(PackReader::new(&dup).get_str().is_err());
    }

    #[test]
    fn shard_placement_is_total_and_stable(
        shards in 1usize..6,
        replicas in 0usize..3,
        name in token(),
        raw in any::<u64>(),
    ) {
        let groups: Vec<Vec<UAdd>> = (0..shards)
            .map(|s| {
                let mut g = vec![shard_primary_uadd(s)];
                g.extend((0..replicas).map(|r| shard_replica_uadd(s, r)));
                g
            })
            .collect();
        let map = ShardMap::new(groups);
        // Total over all names, and pure: the same name always lands on the
        // same shard, independent of group composition.
        let by_name = map.shard_for_name(&name);
        prop_assert!(by_name < shards);
        prop_assert_eq!(map.shard_for_name(&name), by_name);
        let solo = ShardMap::new((0..shards).map(|s| vec![shard_primary_uadd(s)]).collect());
        prop_assert_eq!(solo.shard_for_name(&name), by_name);
        // Total over the full UAdd space — arbitrary raw addresses (even
        // garbage) route to *some* shard, and temporaries pin to shard 0.
        let by_uadd = map.shard_for_uadd(UAdd::from_raw(raw));
        prop_assert!(by_uadd < shards);
        if UAdd::from_raw(raw).is_temporary() {
            prop_assert_eq!(by_uadd, 0);
        }
        // Round trip: a UAdd minted by shard s's generator routes back to s.
        for s in 0..shards {
            let minted = ntcs_addr::UAddGenerator::new(shard_primary_server_id(s)).generate();
            prop_assert_eq!(map.shard_for_uadd(minted), s);
        }
    }

    #[test]
    fn name_cache_never_serves_past_ttl(
        ops in proptest::collection::vec(
            (0u8..4, 0u64..8, 1u64..5_000, 0u64..10_000),
            1..50,
        ),
    ) {
        // Model-checked lease state machine: `model` is (uadd -> (negative,
        // expires_us)); the cache must agree with it at every step, and in
        // particular must never serve a positive entry at or past its
        // expiry, nor a negative entry past its negative TTL.
        let cache = NameCache::new();
        let mut model: std::collections::HashMap<u64, (bool, u64)> =
            std::collections::HashMap::new();
        let mut now: u64 = 0;
        for (op, slot, ttl_us, advance_us) in ops {
            let uadd = UAdd::from_raw(0x100 + slot);
            match op {
                0 => {
                    let module = ResolvedModule {
                        uadd,
                        machine_type: MachineType::Sun,
                        addrs: vec![PhysAddr::Mbx {
                            network: NetworkId(0),
                            path: format!("/m/{slot}"),
                        }],
                    };
                    cache.insert(module, now, ttl_us);
                    model.insert(uadd.raw(), (false, now + ttl_us));
                }
                1 => {
                    cache.insert_negative(uadd, now, ttl_us);
                    model.insert(uadd.raw(), (true, now + ttl_us));
                }
                2 => {
                    let had = model.remove(&uadd.raw());
                    prop_assert_eq!(cache.invalidate(uadd), had.is_some());
                }
                _ => now += advance_us,
            }
            // Check every slot against the model at the current instant.
            for slot in 0..8u64 {
                let u = UAdd::from_raw(0x100 + slot);
                let probe = cache.probe(u, now);
                match model.get(&u.raw()) {
                    Some((false, exp)) if now < *exp => {
                        prop_assert!(matches!(probe, CacheProbe::Hit(_)));
                        let served = cache.serve(u, now).unwrap();
                        prop_assert_eq!(served.map(|m| m.uadd), Some(u));
                    }
                    Some((true, exp)) if now < *exp => {
                        prop_assert!(matches!(probe, CacheProbe::NegativeHit));
                        prop_assert!(cache.serve(u, now).is_err());
                    }
                    Some((false, _)) => {
                        // Expired positive: stale, never a hit; serve()
                        // must fall through to a real resolution.
                        prop_assert!(matches!(probe, CacheProbe::Stale(_)));
                        prop_assert!(cache.serve(u, now).unwrap().is_none());
                    }
                    Some((true, _)) | None => {
                        // Expired negative or absent: a plain miss.
                        prop_assert!(matches!(probe, CacheProbe::Miss));
                        prop_assert!(cache.serve(u, now).unwrap().is_none());
                    }
                }
            }
        }
    }

    #[test]
    fn ns_invalidate_codec_round_trips_and_rejects_garbage(
        uadd in any::<u64>(),
        replacement in any::<u64>(),
        generation in any::<u32>(),
        src in machine_type(),
        dst in machine_type(),
        cut in any::<usize>(),
        bit in 0u8..8,
        idx in any::<usize>(),
    ) {
        let msg = NsInvalidate { uadd, replacement, generation };
        for mode in [ConvMode::Packed, ConvMode::Image] {
            // The stack only ever selects Image between image-compatible
            // machines (§5); don't ask the codec for a conversion the
            // negotiation forbids.
            if mode == ConvMode::Image && !src.image_compatible(dst) {
                continue;
            }
            let bytes = encode_payload(&msg, mode, src);
            let inbound = InboundPayload {
                type_id: NsInvalidate::TYPE_ID,
                mode,
                src_machine: src,
                bytes: bytes.clone(),
            };
            let got: NsInvalidate = inbound.decode(dst).unwrap();
            prop_assert_eq!(&got, &msg);

            // Truncated frames fail cleanly — never panic, never a
            // half-decoded invalidation.
            let cut = cut % (bytes.len() + 1);
            if cut < bytes.len() {
                let trunc = InboundPayload {
                    type_id: NsInvalidate::TYPE_ID,
                    mode,
                    src_machine: src,
                    bytes: bytes.slice(0..cut),
                };
                let _ = trunc.decode::<NsInvalidate>(dst);
            }

            // A flipped bit either still decodes to *some* well-formed
            // triple or errors cleanly; nothing panics.
            let mut corrupt = bytes.to_vec();
            if !corrupt.is_empty() {
                let i = idx % corrupt.len();
                corrupt[i] ^= 1 << bit;
                let mangled = InboundPayload {
                    type_id: NsInvalidate::TYPE_ID,
                    mode,
                    src_machine: src,
                    bytes: corrupt.into(),
                };
                let _ = mangled.decode::<NsInvalidate>(dst);
            }
        }
    }

    #[test]
    fn backoff_schedules_are_deterministic_per_seed(
        seed in any::<u64>(),
        max_attempts in 2u32..16,
    ) {
        use std::time::Duration;
        let p = ntcs::RetryPolicy {
            max_attempts,
            base_backoff: Duration::from_millis(7),
            max_backoff: Duration::from_millis(500),
            jitter: 0.5,
            deadline: Duration::from_secs(30),
            seed,
        };
        let a: Vec<_> = p.schedule().collect();
        let b: Vec<_> = p.schedule().collect();
        prop_assert_eq!(a, b);
    }

    // The SHM ring is strict FIFO under any interleaving of produce and
    // consume, including wraparound: values pop in push order, none lost,
    // none duplicated, and a full ring refuses (never overwrites).
    #[test]
    fn shm_ring_is_fifo_under_arbitrary_interleaving(
        cap_pow in 1u32..6,
        ops in proptest::collection::vec(any::<bool>(), 1..300),
    ) {
        let ring = ntcs_ipcs::ShmRing::new(1usize << cap_pow);
        let mut next_push = 0u64;
        let mut next_pop = 0u64;
        for push in ops {
            if push {
                match ring.try_push(next_push) {
                    Ok(()) => next_push += 1,
                    Err(v) => {
                        prop_assert_eq!(v, next_push);
                        prop_assert_eq!(ring.len(), ring.capacity());
                    }
                }
            } else if let Some(v) = ring.try_pop() {
                prop_assert_eq!(v, next_pop);
                next_pop += 1;
            }
            prop_assert!(ring.len() <= ring.capacity());
        }
        while let Some(v) = ring.try_pop() {
            prop_assert_eq!(v, next_pop);
            next_pop += 1;
        }
        prop_assert_eq!(next_pop, next_push);
    }

    // A concurrent producer/consumer pair over a small ring (forcing many
    // wraparounds) observes every multi-word value intact and in order —
    // no torn reads, no reordering.
    #[test]
    fn shm_ring_never_tears_across_threads(
        n in 1usize..400,
        cap_pow in 1u32..5,
    ) {
        let ring = std::sync::Arc::new(ntcs_ipcs::ShmRing::new(1usize << cap_pow));
        let producer_ring = std::sync::Arc::clone(&ring);
        let producer = std::thread::spawn(move || {
            for i in 0..n as u64 {
                // The payload's halves must always agree: a torn slot
                // would surface as a mismatched pair on the consumer.
                let mut v = (i, !i);
                while let Err(back) = producer_ring.try_push(v) {
                    v = back;
                    std::thread::yield_now();
                }
            }
        });
        let mut popped = 0u64;
        while popped < n as u64 {
            if let Some((a, b)) = ring.try_pop() {
                prop_assert_eq!(a, popped);
                prop_assert_eq!(b, !popped);
                popped += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        prop_assert!(ring.try_pop().is_none());
    }

    // The UDP datagram codec round-trips: every fragment decodes, indices
    // and totals are consistent, and concatenating payloads in index
    // order reconstructs the original frame.
    #[test]
    fn udp_codec_round_trips(
        seq in any::<u32>(),
        frame in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let datagrams = ntcs_ipcs::encode_datagrams(seq, &frame);
        prop_assert!(!datagrams.is_empty());
        let total = datagrams.len() as u16;
        let mut rebuilt = Vec::new();
        for (ix, d) in datagrams.iter().enumerate() {
            let frag = ntcs_ipcs::decode_datagram(d)
                .expect("well-formed datagram must decode");
            prop_assert_eq!(frag.seq, seq);
            prop_assert_eq!(frag.index as usize, ix);
            prop_assert_eq!(frag.total, total);
            rebuilt.extend_from_slice(&frag.payload);
        }
        prop_assert_eq!(rebuilt, frame);
    }

    // Truncating a valid datagram at any point, or flipping any single
    // bit in it, never panics the decoder; a flip inside the checksummed
    // region (length word or payload) is always rejected.
    #[test]
    fn udp_decoder_survives_truncation_and_bit_flips(
        seq in any::<u32>(),
        frame in proptest::collection::vec(any::<u8>(), 0..256),
        cut in any::<usize>(),
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let d = ntcs_ipcs::encode_datagrams(seq, &frame).remove(0);
        let truncated = &d[..cut % (d.len() + 1)];
        let _ = ntcs_ipcs::decode_datagram(truncated);

        let mut flipped = d.clone();
        let at = flip_at % flipped.len();
        flipped[at] ^= 1 << flip_bit;
        let decoded = ntcs_ipcs::decode_datagram(&flipped);
        // Bytes 0..4 are the magic (flip ⇒ not a datagram at all); byte 12
        // onward is the length word, the checksum word, and the payload —
        // a flip in any of them breaks the length or checksum match and
        // must be rejected. Flips in the seq / index / total words may
        // decode (loss shows up as reassembly mismatch, handled a layer
        // up), but must never panic.
        if !(4..12).contains(&at) {
            prop_assert!(decoded.is_none(), "flip at byte {} accepted", at);
        }
    }

    // Garbage bytes never panic the UDP decoder.
    #[test]
    fn udp_decoder_never_panics_on_garbage(
        garbage in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let _ = ntcs_ipcs::decode_datagram(&garbage);
    }
}
